package datagen

import (
	"math"
	"math/rand"

	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// RealLike identifies one of the paper's real datasets (Table III). The
// original TIGER 2015 collections are not redistributable here, so the
// generators below emulate their three load-bearing properties: the
// geometry type mix, the average MBR extent per axis, and the clustered
// (population-like) spatial skew. Cardinalities are parameters: the paper
// uses 20M/70M/98M, experiments here default to laptop-scale fractions.
type RealLike int

const (
	// Roads emulates the ROADS dataset: 20M linestrings,
	// avg extent 1.173e-5 x 0.915e-5.
	Roads RealLike = iota
	// Edges emulates the EDGES dataset: 70M polygons,
	// avg extent 0.491e-5 x 0.383e-5.
	Edges
	// Tiger emulates the merged TIGER dataset: 98M mixed objects,
	// avg extent 0.740e-5 x 0.576e-5.
	Tiger
)

// String implements fmt.Stringer.
func (k RealLike) String() string {
	switch k {
	case Roads:
		return "ROADS"
	case Edges:
		return "EDGES"
	case Tiger:
		return "TIGER"
	}
	return "real(?)"
}

// PaperCardinality returns the cardinality of the original dataset.
func (k RealLike) PaperCardinality() int {
	switch k {
	case Roads:
		return 20_000_000
	case Edges:
		return 70_000_000
	default:
		return 98_000_000
	}
}

// AvgExtent returns the average MBR extent per axis of the original
// dataset (Table III).
func (k RealLike) AvgExtent() (x, y float64) {
	switch k {
	case Roads:
		return 1.173e-5, 0.915e-5
	case Edges:
		return 0.491e-5, 0.383e-5
	default:
		return 0.740e-5, 0.576e-5
	}
}

// cluster is one population center of the skewed spatial model.
type cluster struct {
	cx, cy, sigma, weight float64
}

// clusterModel draws a mixture of gaussian clusters plus a uniform
// background, emulating the population-driven skew of TIGER data.
func clusterModel(rnd *rand.Rand, n int) []cluster {
	clusters := make([]cluster, n)
	for i := range clusters {
		clusters[i] = cluster{
			cx:     rnd.Float64(),
			cy:     rnd.Float64(),
			sigma:  0.005 + rnd.Float64()*0.06,
			weight: rnd.Float64(),
		}
	}
	return clusters
}

// samplePoint draws an object center: 85% from a random cluster (weighted),
// 15% uniform background.
func samplePoint(rnd *rand.Rand, clusters []cluster, totalWeight float64) (float64, float64) {
	if rnd.Float64() < 0.15 {
		return rnd.Float64(), rnd.Float64()
	}
	t := rnd.Float64() * totalWeight
	for _, c := range clusters {
		t -= c.weight
		if t <= 0 {
			x := c.cx + rnd.NormFloat64()*c.sigma
			y := c.cy + rnd.NormFloat64()*c.sigma
			return clamp01(x), clamp01(y)
		}
	}
	return rnd.Float64(), rnd.Float64()
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// RealLikeDataset generates n objects emulating the given dataset,
// including exact geometries (linestrings for ROADS, polygons for EDGES,
// a mix for TIGER).
func RealLikeDataset(kind RealLike, n int, seed int64) *spatial.Dataset {
	rnd := rand.New(rand.NewSource(seed))
	clusters := clusterModel(rnd, 64)
	total := 0.0
	for _, c := range clusters {
		total += c.weight
	}
	avgX, avgY := kind.AvgExtent()

	geoms := make([]geom.Geometry, n)
	for i := range geoms {
		cx, cy := samplePoint(rnd, clusters, total)
		// Exponentially distributed extents around the Table III means
		// reproduce the long tail of real MBR sizes.
		w := rnd.ExpFloat64() * avgX
		h := rnd.ExpFloat64() * avgY
		switch kind {
		case Roads:
			geoms[i] = randLineString(rnd, cx, cy, w, h)
		case Edges:
			geoms[i] = randPolygon(rnd, cx, cy, w, h)
		default:
			if rnd.Intn(98) < 20 { // ROADS:EDGES cardinality ratio
				geoms[i] = randLineString(rnd, cx, cy, w, h)
			} else {
				geoms[i] = randPolygon(rnd, cx, cy, w, h)
			}
		}
	}
	return spatial.NewGeomDataset(geoms)
}

// randLineString draws a 2-5 vertex polyline spanning the w x h box at
// (cx, cy).
func randLineString(rnd *rand.Rand, cx, cy, w, h float64) *geom.LineString {
	nv := 2 + rnd.Intn(4)
	pts := make([]geom.Point, nv)
	for i := range pts {
		// Spread vertices across the box so the MBR extent is ~(w, h).
		fx := float64(i) / float64(nv-1)
		fy := rnd.Float64()
		if i == 0 {
			fy = 0
		} else if i == nv-1 {
			fy = 1
		}
		pts[i] = geom.Point{X: clamp01(cx + (fx-0.5)*w), Y: clamp01(cy + (fy-0.5)*h)}
	}
	return geom.NewLineString(pts...)
}

// randPolygon draws a small convex polygon with MBR extent ~(w, h).
func randPolygon(rnd *rand.Rand, cx, cy, w, h float64) *geom.Polygon {
	nv := 3 + rnd.Intn(5)
	ring := make([]geom.Point, nv)
	for i := range ring {
		a := (float64(i) + rnd.Float64()*0.8) / float64(nv) * 2 * math.Pi
		ring[i] = geom.Point{
			X: clamp01(cx + 0.5*w*math.Cos(a)),
			Y: clamp01(cy + 0.5*h*math.Sin(a)),
		}
	}
	return geom.NewPolygon(ring...)
}

// DatasetStats summarizes a dataset the way Table III reports it.
type DatasetStats struct {
	Cardinality  int
	AvgXExtent   float64
	AvgYExtent   float64
	Linestrings  int
	Polygons     int
	OtherObjects int
}

// Stats computes Table III style statistics.
func Stats(d *spatial.Dataset) DatasetStats {
	s := DatasetStats{Cardinality: d.Len()}
	var sx, sy float64
	for _, e := range d.Entries {
		sx += e.Rect.Width()
		sy += e.Rect.Height()
	}
	if d.Len() > 0 {
		s.AvgXExtent = sx / float64(d.Len())
		s.AvgYExtent = sy / float64(d.Len())
	}
	for _, g := range d.Geoms {
		switch g.(type) {
		case *geom.LineString:
			s.Linestrings++
		case *geom.Polygon:
			s.Polygons++
		default:
			s.OtherObjects++
		}
	}
	return s
}
