// Package datagen generates the workloads of the paper's evaluation:
//
//   - synthetic rectangle datasets with uniform or zipfian spatial
//     distribution, fixed object area and aspect ratio in [0.25, 4]
//     (Table IV);
//   - "TIGER-like" datasets emulating the real ROADS, EDGES and TIGER
//     collections (Table III): clustered spatial skew, per-dataset average
//     MBR extents, and exact linestring/polygon geometries for the
//     refinement experiments;
//   - window and disk query workloads that follow the data distribution
//     (queries always land on populated regions, as in the paper).
//
// All generators are deterministic for a given seed.
package datagen

import (
	"math"
	"math/rand"

	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// Distribution selects the spatial distribution of synthetic data.
type Distribution int

const (
	// Uniform places object centers uniformly in the unit square.
	Uniform Distribution = iota
	// Zipf skews both coordinates with a zipfian (power-law) density, the
	// paper's skewed alternative (a = 1).
	Zipf
)

// String implements fmt.Stringer.
func (d Distribution) String() string {
	if d == Zipf {
		return "zipfian"
	}
	return "uniform"
}

// Spec describes a synthetic rectangle dataset (Table IV).
type Spec struct {
	// N is the cardinality.
	N int
	// Area is the exact area of every rectangle; 0 generates degenerate
	// (point) rectangles, the paper's 10^-inf case.
	Area float64
	// Dist is the spatial distribution of object centers.
	Dist Distribution
	// ZipfAlpha is the zipf exponent (default 1, the paper's a = 1).
	ZipfAlpha float64
	// Seed drives the generator.
	Seed int64
}

// zipfCoord draws a coordinate in (0,1] with density proportional to
// x^-alpha, truncated at xmin (inverse CDF sampling).
func zipfCoord(rnd *rand.Rand, alpha float64) float64 {
	const xmin = 1e-4
	u := rnd.Float64()
	if alpha == 1 {
		// CDF(x) = ln(x/xmin)/ln(1/xmin)
		return xmin * math.Pow(1/xmin, u)
	}
	// General truncated power law on [xmin, 1].
	a := 1 - alpha
	lo := math.Pow(xmin, a)
	return math.Pow(lo+u*(1-lo), 1/a)
}

// Rects generates the synthetic dataset described by spec.
func Rects(spec Spec) []geom.Rect {
	rnd := rand.New(rand.NewSource(spec.Seed))
	alpha := spec.ZipfAlpha
	if alpha == 0 {
		alpha = 1
	}
	out := make([]geom.Rect, spec.N)
	for i := range out {
		var cx, cy float64
		if spec.Dist == Zipf {
			cx, cy = zipfCoord(rnd, alpha), zipfCoord(rnd, alpha)
		} else {
			cx, cy = rnd.Float64(), rnd.Float64()
		}
		w, h := rectSides(rnd, spec.Area)
		out[i] = clampRect(geom.Rect{
			MinX: cx - w/2, MinY: cy - h/2,
			MaxX: cx + w/2, MaxY: cy + h/2,
		})
	}
	return out
}

// rectSides draws width and height with the given exact area and a random
// width-to-height ratio in [0.25, 4] (the paper's constraint against
// unnaturally narrow rectangles).
func rectSides(rnd *rand.Rand, area float64) (w, h float64) {
	if area <= 0 {
		return 0, 0
	}
	ratio := 0.25 + rnd.Float64()*3.75
	w = math.Sqrt(area * ratio)
	h = area / w
	return w, h
}

// clampRect keeps a rectangle inside the unit square, preserving extent
// where possible by shifting.
func clampRect(r geom.Rect) geom.Rect {
	if r.MinX < 0 {
		r.MaxX -= r.MinX
		r.MinX = 0
	}
	if r.MinY < 0 {
		r.MaxY -= r.MinY
		r.MinY = 0
	}
	if r.MaxX > 1 {
		r.MinX -= r.MaxX - 1
		r.MaxX = 1
	}
	if r.MaxY > 1 {
		r.MinY -= r.MaxY - 1
		r.MaxY = 1
	}
	if r.MinX < 0 {
		r.MinX = 0
	}
	if r.MinY < 0 {
		r.MinY = 0
	}
	return r
}

// Dataset builds a spatial.Dataset from a Spec.
func Dataset(spec Spec) *spatial.Dataset {
	return spatial.NewDataset(Rects(spec))
}
