package datagen

import (
	"math"
	"math/rand"

	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// QuerySpec describes a range-query workload. Queries are centered on
// randomly drawn data objects so they always land on populated regions,
// matching the paper's "queries apply on non-empty areas" methodology and
// its "queries follow the data distribution" rule for synthetic data.
type QuerySpec struct {
	// N is the number of queries.
	N int
	// RelExtent is the query side length as a fraction of the data-space
	// side. The paper sweeps {0.01%, 0.05%, 0.1%, 0.5%, 1%} — i.e.
	// RelExtent in {0.0001, 0.0005, 0.001, 0.005, 0.01}. (The evaluation
	// text says "relative area", but its Figure 10 axis and the reported
	// result cardinalities identify the parameter as per-dimension
	// extent; a window of relative extent e covers e^2 of the space.)
	RelExtent float64
	// Seed drives the generator.
	Seed int64
}

// Windows generates window queries of the given relative extent over the
// dataset. The aspect ratio varies in [0.5, 2] around a square of side
// RelExtent, preserving the query area RelExtent^2.
func Windows(d *spatial.Dataset, spec QuerySpec) []geom.Rect {
	rnd := rand.New(rand.NewSource(spec.Seed))
	out := make([]geom.Rect, spec.N)
	for i := range out {
		cx, cy := queryCenter(rnd, d)
		ratio := 0.5 + rnd.Float64()*1.5
		w := spec.RelExtent * math.Sqrt(ratio)
		h := spec.RelExtent * spec.RelExtent / w
		out[i] = geom.Rect{
			MinX: cx - w/2, MinY: cy - h/2,
			MaxX: cx + w/2, MaxY: cy + h/2,
		}
	}
	return out
}

// Disks generates disk queries whose area equals a window of the same
// relative extent (radius = RelExtent/sqrt(pi)), centered like Windows.
func Disks(d *spatial.Dataset, spec QuerySpec) []geom.Disk {
	rnd := rand.New(rand.NewSource(spec.Seed))
	radius := spec.RelExtent / math.Sqrt(math.Pi)
	out := make([]geom.Disk, spec.N)
	for i := range out {
		cx, cy := queryCenter(rnd, d)
		out[i] = geom.Disk{Center: geom.Point{X: cx, Y: cy}, Radius: radius}
	}
	return out
}

// queryCenter picks the center of a random data object, or a uniform
// point for an empty dataset.
func queryCenter(rnd *rand.Rand, d *spatial.Dataset) (float64, float64) {
	if d == nil || d.Len() == 0 {
		return rnd.Float64(), rnd.Float64()
	}
	c := d.Entries[rnd.Intn(d.Len())].Rect.Center()
	return c.X, c.Y
}
