package datagen

import (
	"math"
	"testing"

	"github.com/twolayer/twolayer/internal/geom"
)

func TestRectsBasicProperties(t *testing.T) {
	for _, dist := range []Distribution{Uniform, Zipf} {
		spec := Spec{N: 2000, Area: 1e-6, Dist: dist, Seed: 1}
		rects := Rects(spec)
		if len(rects) != spec.N {
			t.Fatalf("%v: got %d rects", dist, len(rects))
		}
		unit := geom.Rect{MaxX: 1, MaxY: 1}
		for i, r := range rects {
			if !r.Valid() {
				t.Fatalf("%v: rect %d invalid: %v", dist, i, r)
			}
			if !unit.Contains(r) {
				t.Fatalf("%v: rect %d outside unit square: %v", dist, i, r)
			}
			if a := r.Area(); math.Abs(a-spec.Area)/spec.Area > 1e-9 {
				t.Fatalf("%v: rect %d area %g, want %g", dist, i, a, spec.Area)
			}
			// Aspect ratio within [0.25, 4].
			ratio := r.Width() / r.Height()
			if ratio < 0.25-1e-9 || ratio > 4+1e-9 {
				t.Fatalf("%v: rect %d aspect %g out of [0.25,4]", dist, i, ratio)
			}
		}
	}
}

func TestRectsDeterministic(t *testing.T) {
	a := Rects(Spec{N: 100, Area: 1e-8, Seed: 7})
	b := Rects(Spec{N: 100, Area: 1e-8, Seed: 7})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same data")
		}
	}
	c := Rects(Spec{N: 100, Area: 1e-8, Seed: 8})
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical data")
	}
}

func TestPointRects(t *testing.T) {
	rects := Rects(Spec{N: 100, Area: 0, Seed: 3})
	for _, r := range rects {
		if r.Width() != 0 || r.Height() != 0 {
			t.Fatalf("area 0 must generate points, got %v", r)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	rects := Rects(Spec{N: 10000, Area: 0, Dist: Zipf, Seed: 5})
	// Zipfian coordinates concentrate near the origin: far more mass in
	// the first decile than the last.
	lo, hi := 0, 0
	for _, r := range rects {
		if r.MinX < 0.1 {
			lo++
		}
		if r.MinX > 0.9 {
			hi++
		}
	}
	if lo <= hi*3 {
		t.Errorf("zipf skew missing: %d low vs %d high", lo, hi)
	}
	uni := Rects(Spec{N: 10000, Area: 0, Dist: Uniform, Seed: 5})
	lo = 0
	for _, r := range uni {
		if r.MinX < 0.1 {
			lo++
		}
	}
	if lo < 800 || lo > 1200 {
		t.Errorf("uniform distribution skewed: %d in first decile", lo)
	}
}

func TestRealLikeDatasets(t *testing.T) {
	for _, kind := range []RealLike{Roads, Edges, Tiger} {
		d := RealLikeDataset(kind, 5000, 11)
		if err := d.Validate(); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		s := Stats(d)
		if s.Cardinality != 5000 {
			t.Fatalf("%v: cardinality %d", kind, s.Cardinality)
		}
		wantX, wantY := kind.AvgExtent()
		// Exponential extents: the sample mean should be within 20% of
		// the Table III target at n=5000 (clamping shrinks it slightly).
		if s.AvgXExtent < 0.7*wantX || s.AvgXExtent > 1.3*wantX {
			t.Errorf("%v: avg x extent %g, want ~%g", kind, s.AvgXExtent, wantX)
		}
		if s.AvgYExtent < 0.7*wantY || s.AvgYExtent > 1.3*wantY {
			t.Errorf("%v: avg y extent %g, want ~%g", kind, s.AvgYExtent, wantY)
		}
		switch kind {
		case Roads:
			if s.Polygons != 0 || s.Linestrings != 5000 {
				t.Errorf("ROADS mix wrong: %+v", s)
			}
		case Edges:
			if s.Linestrings != 0 || s.Polygons != 5000 {
				t.Errorf("EDGES mix wrong: %+v", s)
			}
		case Tiger:
			if s.Linestrings == 0 || s.Polygons == 0 {
				t.Errorf("TIGER mix wrong: %+v", s)
			}
		}
	}
}

func TestPaperConstants(t *testing.T) {
	if Roads.PaperCardinality() != 20_000_000 || Edges.PaperCardinality() != 70_000_000 ||
		Tiger.PaperCardinality() != 98_000_000 {
		t.Error("paper cardinalities wrong")
	}
	if Roads.String() != "ROADS" || Edges.String() != "EDGES" || Tiger.String() != "TIGER" ||
		RealLike(9).String() != "real(?)" {
		t.Error("RealLike.String wrong")
	}
	if Uniform.String() != "uniform" || Zipf.String() != "zipfian" {
		t.Error("Distribution.String wrong")
	}
}

func TestWindows(t *testing.T) {
	d := Dataset(Spec{N: 1000, Area: 1e-6, Seed: 2})
	qs := Windows(d, QuerySpec{N: 200, RelExtent: 0.001, Seed: 3})
	if len(qs) != 200 {
		t.Fatalf("got %d queries", len(qs))
	}
	for i, w := range qs {
		if !w.Valid() {
			t.Fatalf("query %d invalid", i)
		}
		// Relative extent e means area e^2, aspect in [0.5, 2].
		if a := w.Area(); math.Abs(a-1e-6)/1e-6 > 1e-9 {
			t.Fatalf("query %d area %g, want 1e-6", i, a)
		}
		if ratio := w.Width() / w.Height(); ratio < 0.5-1e-9 || ratio > 2+1e-9 {
			t.Fatalf("query %d aspect %g out of [0.5,2]", i, ratio)
		}
	}
	// Queries centered on data: nearly all should be non-empty.
	nonEmpty := 0
	for _, w := range qs {
		for _, e := range d.Entries {
			if e.Rect.Intersects(w) {
				nonEmpty++
				break
			}
		}
	}
	if nonEmpty < 190 {
		t.Errorf("only %d/200 queries hit data", nonEmpty)
	}
}

func TestDisks(t *testing.T) {
	d := Dataset(Spec{N: 500, Area: 1e-6, Seed: 2})
	qs := Disks(d, QuerySpec{N: 100, RelExtent: 0.001, Seed: 3})
	wantR := 0.001 / math.Sqrt(math.Pi)
	for i, q := range qs {
		if math.Abs(q.Radius-wantR) > 1e-12 {
			t.Fatalf("disk %d radius %g, want %g", i, q.Radius, wantR)
		}
	}
}

func TestQueryCenterEmptyDataset(t *testing.T) {
	qs := Windows(nil, QuerySpec{N: 5, RelExtent: 0.01, Seed: 1})
	if len(qs) != 5 {
		t.Fatal("empty dataset should still produce queries")
	}
}

func TestStatsEmpty(t *testing.T) {
	s := Stats(Dataset(Spec{N: 0, Seed: 1}))
	if s.Cardinality != 0 || s.AvgXExtent != 0 {
		t.Errorf("empty stats: %+v", s)
	}
}
