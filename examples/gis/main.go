// GIS scenario: index a road network (linestrings) and answer exact
// range queries with the secondary filter, the workload that motivates
// the paper's refinement-step optimization (Section V).
//
// The example builds a synthetic road network: long, thin polylines
// clustered around "towns". It then compares the three refinement modes
// on the same query workload and reports how many exact geometry tests
// each one needed.
package main

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	twolayer "github.com/twolayer/twolayer"
)

// town is a population center roads cluster around.
type town struct{ x, y, spread float64 }

func makeRoadNetwork(rnd *rand.Rand, nRoads int) []twolayer.Geometry {
	towns := make([]town, 40)
	for i := range towns {
		towns[i] = town{x: rnd.Float64(), y: rnd.Float64(), spread: 0.01 + rnd.Float64()*0.05}
	}
	roads := make([]twolayer.Geometry, nRoads)
	for i := range roads {
		t := towns[rnd.Intn(len(towns))]
		// A road is a 3-6 vertex polyline meandering out of its town.
		n := 3 + rnd.Intn(4)
		pts := make([]twolayer.Point, n)
		x := t.x + rnd.NormFloat64()*t.spread
		y := t.y + rnd.NormFloat64()*t.spread
		heading := rnd.Float64() * 2 * math.Pi
		for j := range pts {
			pts[j] = twolayer.Point{X: clamp01(x), Y: clamp01(y)}
			heading += rnd.NormFloat64() * 0.5 // gentle curves
			step := 0.001 + rnd.Float64()*0.004
			x += math.Cos(heading) * step
			y += math.Sin(heading) * step
		}
		roads[i] = twolayer.NewLineString(pts...)
	}
	return roads
}

func clamp01(v float64) float64 { return math.Max(0, math.Min(1, v)) }

func main() {
	rnd := rand.New(rand.NewSource(7))
	fmt.Println("building road network...")
	roads := makeRoadNetwork(rnd, 500_000)
	idx := twolayer.BuildGeoms(roads, twolayer.Options{GridSize: 512})
	fmt.Printf("indexed %d roads\n", idx.Len())

	// Query workload: "which roads cross this map viewport?"
	viewports := make([]twolayer.Rect, 2000)
	for i := range viewports {
		x, y := rnd.Float64()*0.95, rnd.Float64()*0.95
		viewports[i] = twolayer.Rect{MinX: x, MinY: y, MaxX: x + 0.03, MaxY: y + 0.03}
	}

	for _, mode := range []twolayer.RefineMode{
		twolayer.RefineSimple, twolayer.RefineAvoid, twolayer.RefineAvoidPlus,
	} {
		stats := idx.EnableStats()
		start := time.Now()
		results := 0
		for _, w := range viewports {
			idx.WindowExact(w, mode, func(twolayer.ID) { results++ })
		}
		elapsed := time.Since(start)
		fmt.Printf("%-9s %8d results  %8d exact tests  %8d filter hits  %v\n",
			mode, results, stats.RefinementTests, stats.SecondaryFilterHits, elapsed)
		idx.DisableStats()
	}

	// Proximity search: all roads within 500m (~0.005) of an incident.
	incident := twolayer.Point{X: 0.5, Y: 0.5}
	n := 0
	idx.DiskExact(incident, 0.005, twolayer.RefineAvoid, func(twolayer.ID) { n++ })
	fmt.Printf("roads within 0.005 of %v: %d\n", incident, n)
}
