// Moving-object maintenance: the update workload of the paper's Table VI.
// A fleet of delivery vehicles maintains its current service areas in the
// index: the bulk of the fleet is loaded up front, then the index absorbs
// a continuous stream of area updates (delete old MBR, insert new MBR)
// interleaved with dispatcher range queries.
//
// Grid indices absorb updates orders of magnitude faster than tree
// indices because an update touches only the tiles the MBR overlaps —
// this example prints the sustained update and query rates.
package main

import (
	"fmt"
	"math/rand"
	"time"

	twolayer "github.com/twolayer/twolayer"
)

type vehicle struct {
	id   twolayer.ID
	area twolayer.Rect
}

func serviceArea(rnd *rand.Rand, cx, cy float64) twolayer.Rect {
	w := 0.002 + rnd.Float64()*0.004
	h := 0.002 + rnd.Float64()*0.004
	return twolayer.Rect{MinX: cx, MinY: cy, MaxX: cx + w, MaxY: cy + h}
}

func main() {
	rnd := rand.New(rand.NewSource(42))
	const fleet = 2_000_000

	// Bulk-load 90% of the fleet (Table VI methodology), then insert the
	// remaining 10% incrementally.
	vehicles := make([]vehicle, fleet)
	rects := make([]twolayer.Rect, 0, fleet*9/10)
	for i := range vehicles {
		v := vehicle{id: twolayer.ID(i), area: serviceArea(rnd, rnd.Float64(), rnd.Float64())}
		vehicles[i] = v
		if i < fleet*9/10 {
			rects = append(rects, v.area)
		}
	}
	fmt.Println("bulk loading 90% of the fleet...")
	idx := twolayer.BuildRects(rects, twolayer.Options{
		GridSize: 1024,
		Space:    twolayer.Rect{MaxX: 1.01, MaxY: 1.01},
	})

	start := time.Now()
	for _, v := range vehicles[fleet*9/10:] {
		idx.Insert(v.id, v.area)
	}
	insertTime := time.Since(start)
	fmt.Printf("inserted last 10%% (%d objects) in %v (%.0f inserts/s)\n",
		fleet/10, insertTime, float64(fleet/10)/insertTime.Seconds())

	// Steady state: vehicles move, dispatcher queries interleave.
	const updates = 200_000
	const queryEvery = 20
	queries := 0
	start = time.Now()
	for i := 0; i < updates; i++ {
		v := &vehicles[rnd.Intn(fleet)]
		if !idx.Delete(v.id, v.area) {
			panic("vehicle missing from index")
		}
		// The vehicle drifts to a nearby position.
		c := v.area.Center()
		v.area = serviceArea(rnd,
			clamp01(c.X+rnd.NormFloat64()*0.01),
			clamp01(c.Y+rnd.NormFloat64()*0.01))
		idx.Insert(v.id, v.area)

		if i%queryEvery == 0 {
			// Dispatcher: who can serve this neighborhood right now?
			x, y := rnd.Float64(), rnd.Float64()
			idx.WindowCount(twolayer.Rect{MinX: x, MinY: y, MaxX: x + 0.01, MaxY: y + 0.01})
			queries++
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("steady state: %d move-updates + %d queries in %v (%.0f updates/s)\n",
		updates, queries, elapsed, float64(updates)/elapsed.Seconds())
	fmt.Printf("fleet size still consistent: %d indexed objects\n", idx.Len())
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
