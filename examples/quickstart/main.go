// Quickstart: build a two-layer index over rectangle objects and run
// window and disk range queries.
package main

import (
	"fmt"
	"math/rand"

	twolayer "github.com/twolayer/twolayer"
)

func main() {
	// One million small rectangles scattered over the unit square.
	rnd := rand.New(rand.NewSource(1))
	rects := make([]twolayer.Rect, 1_000_000)
	for i := range rects {
		x, y := rnd.Float64(), rnd.Float64()
		rects[i] = twolayer.Rect{MinX: x, MinY: y, MaxX: x + 0.001, MaxY: y + 0.001}
	}

	// GridSize is tiles per dimension; Decompose enables the 2-layer+
	// sorted tables, the fastest configuration for static data.
	idx := twolayer.BuildRects(rects, twolayer.Options{GridSize: 512, Decompose: true})
	fmt.Printf("indexed %d objects, replication factor %.3f, ~%d MB\n",
		idx.Len(), idx.ReplicationFactor(), idx.MemoryFootprint()/(1<<20))

	// A window query: every object whose MBR intersects the window is
	// reported exactly once — no duplicate elimination happens anywhere.
	window := twolayer.Rect{MinX: 0.40, MinY: 0.40, MaxX: 0.43, MaxY: 0.43}
	fmt.Printf("window %v -> %d objects\n", window, idx.WindowCount(window))

	// Stream results instead of counting; the iterator form supports
	// early break (the scan stops, tile-granular).
	shown := 0
	for id, mbr := range idx.WindowAll(window) {
		fmt.Printf("  id=%d mbr=%v\n", id, mbr)
		if shown++; shown == 3 {
			break
		}
	}

	// A disk query: all objects within distance 0.02 of a point.
	center := twolayer.Point{X: 0.5, Y: 0.5}
	fmt.Printf("disk around %v -> %d objects\n", center, idx.DiskCount(center, 0.02))

	// The index is dynamic: insert and delete by (id, MBR).
	extra := twolayer.Rect{MinX: 0.415, MinY: 0.415, MaxX: 0.418, MaxY: 0.418}
	idx.Insert(twolayer.ID(len(rects)), extra)
	fmt.Printf("after insert: %d objects in window\n", idx.WindowCount(window))
	idx.Delete(twolayer.ID(len(rects)), extra)
	fmt.Printf("after delete: %d objects in window\n", idx.WindowCount(window))

	// For concurrent readers and writers, wrap the index in a Live
	// handle: readers pin immutable snapshots (one atomic load, no
	// locks) while a single apply loop publishes copy-on-write updates.
	// LiveFrom takes ownership — do not use idx directly afterward.
	live := twolayer.LiveFrom(idx, twolayer.LiveOptions{})
	defer live.Close()
	epoch, _ := live.Insert(twolayer.ID(len(rects))+1, extra)
	snap := live.Snapshot() // immutable; safe from any goroutine
	fmt.Printf("live epoch %d: %d objects in window\n", epoch, snap.WindowCount(window))
}
