// Location-based analytics: index the spatial influence regions of mobile
// users (polygons around their activity centers) and answer large batches
// of POI-visibility queries — the workload from the paper's introduction
// (effective POI recommendation needs "which influence regions cover this
// candidate POI area?" at high throughput).
//
// The example contrasts the two batch strategies of Section VI
// (queries-based vs cache-conscious tiles-based), serial and on all
// cores.
package main

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"time"

	twolayer "github.com/twolayer/twolayer"
)

// influenceRegion approximates a user's activity area: a convex polygon
// around a home location, larger for more mobile users.
func influenceRegion(rnd *rand.Rand) twolayer.Geometry {
	cx, cy := rnd.Float64(), rnd.Float64()
	radius := 0.0005 + rnd.ExpFloat64()*0.002 // a few very mobile users
	n := 5 + rnd.Intn(4)
	ring := make([]twolayer.Point, n)
	for i := range ring {
		a := (float64(i) + 0.3*rnd.Float64()) / float64(n) * 2 * math.Pi
		r := radius * (0.7 + 0.3*rnd.Float64())
		ring[i] = twolayer.Point{
			X: math.Max(0, math.Min(1, cx+r*math.Cos(a))),
			Y: math.Max(0, math.Min(1, cy+r*math.Sin(a))),
		}
	}
	return twolayer.NewPolygon(ring...)
}

func main() {
	rnd := rand.New(rand.NewSource(99))
	fmt.Println("building user influence regions...")
	regions := make([]twolayer.Geometry, 1_000_000)
	for i := range regions {
		regions[i] = influenceRegion(rnd)
	}
	idx := twolayer.BuildGeoms(regions, twolayer.Options{GridSize: 1024, Decompose: true})
	fmt.Printf("indexed %d regions, replication %.3f\n", idx.Len(), idx.ReplicationFactor())

	// A batch of candidate POI areas: "how many users would see an ad
	// placed here?"
	const batch = 10_000
	queries := make([]twolayer.Rect, batch)
	for i := range queries {
		x, y := rnd.Float64(), rnd.Float64()
		queries[i] = twolayer.Rect{MinX: x, MinY: y, MaxX: x + 0.005, MaxY: y + 0.005}
	}

	cores := runtime.NumCPU()
	for _, cfg := range []struct {
		strategy twolayer.BatchStrategy
		threads  int
	}{
		{twolayer.QueriesBased, 1},
		{twolayer.TilesBased, 1},
		{twolayer.QueriesBased, cores},
		{twolayer.TilesBased, cores},
	} {
		start := time.Now()
		counts := idx.BatchWindowCounts(queries, cfg.strategy, cfg.threads)
		elapsed := time.Since(start)
		total := 0
		for _, c := range counts {
			total += c
		}
		fmt.Printf("%-13s threads=%-2d  %8.0f queries/s  (%d candidate pairs)\n",
			cfg.strategy, cfg.threads, float64(batch)/elapsed.Seconds(), total)
	}

	// Single ad placement with exact geometry check.
	spot := twolayer.Rect{MinX: 0.5, MinY: 0.5, MaxX: 0.505, MaxY: 0.505}
	reach := 0
	idx.WindowExact(spot, twolayer.RefineAvoidPlus, func(twolayer.ID) { reach++ })
	fmt.Printf("exact audience at %v: %d users\n", spot, reach)
}
