// Spatio-temporal indexing with the m-dimensional two-layer grid: vehicle
// trajectory segments as 3D boxes (x, y, time). "Which vehicles passed
// through this neighborhood during this hour?" becomes a 3D window query;
// the 2^3 = 8 secondary classes avoid duplicate results exactly as the
// four classes do in the plane (Section IV-D of the paper).
package main

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/twolayer/twolayer/ndim"
)

func main() {
	rnd := rand.New(rand.NewSource(12))

	// One day of trajectories, normalized: space in [0,1]^2, time in
	// [0,1] (~86s per 0.001).
	const segments = 2_000_000
	entries := make([]ndim.Entry, segments)
	for i := range entries {
		// A segment spans a small spatial step over a short time slice.
		x, y, t := rnd.Float64(), rnd.Float64(), rnd.Float64()
		dx, dy, dt := rnd.Float64()*0.002, rnd.Float64()*0.002, rnd.Float64()*0.0005
		entries[i] = ndim.Entry{
			Box: ndim.Box(
				[]float64{x, y, t},
				[]float64{min(1, x+dx), min(1, y+dy), min(1, t+dt)},
			),
			ID: uint32(i),
		}
	}

	space := ndim.Box([]float64{0, 0, 0}, []float64{1, 1, 1})
	start := time.Now()
	idx, err := ndim.Build(entries, ndim.Options{Space: space, Tiles: 64})
	if err != nil {
		panic(err)
	}
	fmt.Printf("indexed %d trajectory segments (3D) in %v\n", idx.Len(), time.Since(start))

	// A neighborhood during one hour: 5% of space per axis, ~4% of the day.
	q := ndim.Box(
		[]float64{0.40, 0.40, 0.50},
		[]float64{0.45, 0.45, 0.54},
	)
	start = time.Now()
	n, err := idx.WindowCount(q)
	if err != nil {
		panic(err)
	}
	fmt.Printf("segments in the neighborhood during the hour: %d (%v)\n", n, time.Since(start))

	// Sweep the same neighborhood across the day, an hour at a time.
	fmt.Println("hourly activity profile:")
	for h := 0; h < 24; h += 4 {
		t0 := float64(h) / 24
		q := ndim.Box([]float64{0.40, 0.40, t0}, []float64{0.45, 0.45, t0 + 1.0/24})
		n, err := idx.WindowCount(q)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %02d:00-%02d:00  %6d segments\n", h, h+1, n)
	}

	// A spatio-temporal ball: everything within a combined space-time
	// distance of an incident (useful when time is scaled to comparable
	// units, e.g. "within ~500m and ~10 minutes").
	incident := []float64{0.42, 0.58, 0.5}
	nearby, err := idx.BallCount(incident, 0.01)
	if err != nil {
		panic(err)
	}
	fmt.Printf("segments within 0.01 space-time distance of the incident: %d\n", nearby)

	// Throughput check: many random spatio-temporal probes.
	const probes = 10000
	start = time.Now()
	total := 0
	for i := 0; i < probes; i++ {
		x, y, t := rnd.Float64()*0.95, rnd.Float64()*0.95, rnd.Float64()*0.95
		q := ndim.Box([]float64{x, y, t}, []float64{x + 0.02, y + 0.02, t + 0.02})
		n, _ := idx.WindowCount(q)
		total += n
	}
	el := time.Since(start)
	fmt.Printf("%d probes in %v (%.0f queries/s, %d results)\n",
		probes, el, float64(probes)/el.Seconds(), total)
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
