// Spatial join: which land parcels does each road segment cross?
//
// The classic GIS overlay workload joins two non-point datasets — here a
// road network against land parcels. Both datasets are indexed on the
// same two-layer grid; the class combinations of the join produce every
// intersecting pair exactly once, with no duplicate elimination, which is
// the extension of the paper's duplicate-avoidance idea to joins (its
// stated future work). A nested R-tree-style approach is emulated for
// comparison by probing one index with the other's MBRs.
package main

import (
	"fmt"
	"math/rand"
	"time"

	twolayer "github.com/twolayer/twolayer"
)

func main() {
	rnd := rand.New(rand.NewSource(5))
	const gridSize = 512
	space := twolayer.Rect{MaxX: 1, MaxY: 1}

	// Land parcels: a dense mosaic of small rectangles.
	parcels := make([]twolayer.Rect, 1_000_000)
	for i := range parcels {
		x, y := rnd.Float64(), rnd.Float64()
		parcels[i] = twolayer.Rect{MinX: x, MinY: y, MaxX: x + 0.0008, MaxY: y + 0.0008}
	}

	// Road segments: longer, thinner boxes.
	roads := make([]twolayer.Rect, 200_000)
	for i := range roads {
		x, y := rnd.Float64(), rnd.Float64()
		if rnd.Intn(2) == 0 {
			roads[i] = twolayer.Rect{MinX: x, MinY: y, MaxX: x + 0.004, MaxY: y + 0.0003}
		} else {
			roads[i] = twolayer.Rect{MinX: x, MinY: y, MaxX: x + 0.0003, MaxY: y + 0.004}
		}
	}

	opts := twolayer.Options{GridSize: gridSize, Space: space}
	fmt.Println("indexing both datasets on a shared grid...")
	parcelIdx := twolayer.BuildRects(parcels, opts)
	roadIdx := twolayer.BuildRects(roads, opts)

	// Grid join with class-based duplicate avoidance.
	start := time.Now()
	pairs := 0
	roadIdx.Join(parcelIdx, func(road, parcel twolayer.ID) { pairs++ })
	joinTime := time.Since(start)
	fmt.Printf("two-layer grid join:   %9d pairs in %v\n", pairs, joinTime)

	// Baseline: probe the parcel index once per road (index nested loop).
	start = time.Now()
	probePairs := 0
	for _, r := range roads {
		probePairs += parcelIdx.WindowCount(r)
	}
	probeTime := time.Since(start)
	fmt.Printf("index nested loop:     %9d pairs in %v (%.1fx slower)\n",
		probePairs, probeTime, probeTime.Seconds()/joinTime.Seconds())

	if pairs != probePairs {
		panic("join results disagree")
	}

	// A local analytics question on top of the join: the parcel touched
	// by the most roads.
	counts := make(map[twolayer.ID]int)
	roadIdx.Join(parcelIdx, func(_, parcel twolayer.ID) { counts[parcel]++ })
	bestParcel, bestCount := twolayer.ID(0), 0
	for id, c := range counts {
		if c > bestCount {
			bestParcel, bestCount = id, c
		}
	}
	fmt.Printf("busiest parcel: id=%d crossed by %d roads at %v\n",
		bestParcel, bestCount, parcels[bestParcel])

	// And a kNN lookup: the five parcels nearest to a depot.
	depot := twolayer.Point{X: 0.42, Y: 0.58}
	for _, n := range parcelIdx.KNN(depot, 5) {
		fmt.Printf("near depot: parcel %d at distance %.5f\n", n.ID, n.Dist)
	}
}
