# Standard verify entry point: `make check` is what CI and pre-commit
# runs — build everything, gate on gofmt, vet, then the full test suite
# under the race detector (the server and live-index concurrency tests
# depend on it).

GO ?= go

.PHONY: check build fmt-check vet test test-race race-hot bench experiments

check: build fmt-check vet test-race

build:
	$(GO) build ./...

# Fails (listing the files) if anything is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Tier-1 test run (what the paper-reproduction harness requires).
test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# The concurrency-heavy packages only — a faster race pass for iterating
# on the live (copy-on-write) index and the HTTP server.
race-hot:
	$(GO) test -race ./internal/core ./internal/server

bench:
	$(GO) test -bench=. -benchmem

experiments:
	$(GO) run ./cmd/experiments -exp all
