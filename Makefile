# Standard verify entry point: `make check` is what CI and pre-commit
# runs — build everything, vet, then the full test suite under the race
# detector (the server package's concurrency tests depend on it).

GO ?= go

.PHONY: check build vet test test-race bench experiments

check: build vet test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Tier-1 test run (what the paper-reproduction harness requires).
test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

experiments:
	$(GO) run ./cmd/experiments -exp all
