# Standard verify entry point: `make check` is what CI and pre-commit
# runs — build everything, gate on gofmt, vet, then the full test suite
# under the race detector (the server and live-index concurrency tests
# depend on it).

GO ?= go

.PHONY: check build fmt-check vet test test-race test-shuffle race-hot bench bench-build bench-json bench-shard bench-query fuzz-short experiments docs-check

check: build fmt-check vet test-race docs-check

build:
	$(GO) build ./...

# Fails (listing the files) if anything is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Documentation gates: every registered /metrics family must be
# documented in docs/OBSERVABILITY.md, and relative markdown links in
# README.md and docs/ must resolve (see cmd/docscheck).
docs-check:
	$(GO) run ./cmd/docscheck

# Tier-1 test run (what the paper-reproduction harness requires).
test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Order-independence gate: run every test twice in a shuffled order, so
# tests leaking state into package-level singletons (or depending on a
# sibling having run first) fail here instead of flaking in -race runs.
test-shuffle:
	$(GO) test -shuffle=on -count=2 ./...

# The concurrency-heavy packages only — a faster race pass for iterating
# on the live (copy-on-write) index and the HTTP server.
race-hot:
	$(GO) test -race ./internal/core ./internal/server

bench:
	$(GO) test -bench=. -benchmem

# Construction-pipeline benchmarks: sequential insert loop vs the
# two-pass parallel build, plus the decomposed-table build. CI runs this
# with BENCH_BUILD_TIME=1x as a smoke test; use the default (or longer)
# on a multi-core machine to measure scaling.
BENCH_BUILD_TIME ?= 1s

bench-build:
	$(GO) test -run '^$$' -bench 'BenchmarkBuild' -benchmem \
		-benchtime $(BENCH_BUILD_TIME) .

# The core window/disk/live/build benchmarks as a committed JSON report:
# writes the next BENCH_<n>.json so runs across revisions sit side by
# side and diff cleanly (see cmd/benchjson).
BENCH_JSON_PATTERN ?= BenchmarkTable5Window|BenchmarkDiskQueries|BenchmarkLiveApply|BenchmarkBuild
BENCH_JSON_TIME ?= 0.2s

bench-json:
	$(GO) build -o /tmp/benchjson ./cmd/benchjson
	$(GO) test -run '^$$' -bench '$(BENCH_JSON_PATTERN)' -benchmem \
		-benchtime $(BENCH_JSON_TIME) . | /tmp/benchjson

# Sharded-engine benchmarks as a committed JSON report (BENCH_3.json):
# scatter-gather window queries and live mutation throughput at 1/2/4/8
# shards. The Apply series is the sharding acceptance measurement —
# mutation throughput at 4 shards must be at least 2x the 1-shard run
# (each shard's copy-on-write publish clones only its own slab).
BENCH_SHARD_TIME ?= 1s

bench-shard:
	$(GO) build -o /tmp/benchjson ./cmd/benchjson
	$(GO) test -run '^$$' -bench 'BenchmarkSharded' -benchmem \
		-benchtime $(BENCH_SHARD_TIME) . | /tmp/benchjson -o BENCH_3.json

# Adaptive-kernel benchmarks as a committed JSON report (BENCH_4.json):
# the count pushdown vs the streamed reference across query sizes, the
# chunked parallel window kernel at forced worker counts, and the
# existence probe. The pushdown series is the acceptance measurement —
# large count-only windows must beat the streamed baseline by >= 10x.
# CI runs this with BENCH_QUERY_TIME=1x as a smoke test.
BENCH_QUERY_TIME ?= 1s

bench-query:
	$(GO) build -o /tmp/benchjson ./cmd/benchjson
	$(GO) test -run '^$$' -bench 'BenchmarkWindowCountFast|BenchmarkWindowParallel|BenchmarkIntersects' \
		-benchmem -benchtime $(BENCH_QUERY_TIME) . | /tmp/benchjson -o BENCH_4.json

# Short fuzz pass over every fuzz target (CI runs this): seconds per
# target, catching format-level regressions without a long campaign.
FUZZTIME ?= 10s

fuzz-short:
	$(GO) test -run '^$$' -fuzz '^FuzzWindow$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzSnapshotDecode$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzWALReplay$$' -fuzztime $(FUZZTIME) ./internal/wal
	$(GO) test -run '^$$' -fuzz '^FuzzV1Envelope$$' -fuzztime $(FUZZTIME) ./internal/server

experiments:
	$(GO) run ./cmd/experiments -exp all
