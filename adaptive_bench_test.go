// Benchmarks for the adaptive query kernels: the O(tiles) count
// pushdown against the streamed reference it replaced, the chunked
// intra-query parallel kernel across forced worker counts, and the
// early-stopping existence probe. `make bench-query` records these into
// BENCH_4.json.
package twolayer_test

import (
	"testing"

	"github.com/twolayer/twolayer/internal/core"
	"github.com/twolayer/twolayer/internal/datagen"
	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// BenchmarkWindowCountFast: count-only window queries on the Table-5
// ROADS workload. "streamed" is the pre-pushdown reference (walk every
// matching entry through a callback); "pushdown" is WindowCountFast,
// which answers interior tiles with len() and 1-comparison decomposed
// classes with a binary-search run length. The streamed/pushdown ratio
// is the kernel's speedup at each query size.
func BenchmarkWindowCountFast(b *testing.B) {
	benchData()
	for _, area := range []float64{0.001, 0.01, 0.04, 0.25} {
		queries := datagen.Windows(benchRoads, datagen.QuerySpec{
			N: benchQueries, RelExtent: area, Seed: benchSeed + 2})
		run := func(b *testing.B, count func(geom.Rect) int) {
			b.ReportAllocs()
			b.ResetTimer()
			total := 0
			for i := 0; i < b.N; i++ {
				total += count(queries[i%len(queries)])
			}
			benchSink = total
		}
		plain := core.Build(benchRoads, core.Options{NX: benchGrid, NY: benchGrid})
		dec := core.Build(benchRoads, core.Options{NX: benchGrid, NY: benchGrid, Decompose: true})
		b.Run("streamed/area="+ftoa2(area), func(b *testing.B) {
			run(b, func(w geom.Rect) int {
				n := 0
				plain.Window(w, func(spatial.Entry) { n++ })
				return n
			})
		})
		b.Run("pushdown/area="+ftoa2(area), func(b *testing.B) {
			run(b, plain.WindowCountFast)
		})
		b.Run("pushdown-decomposed/area="+ftoa2(area), func(b *testing.B) {
			run(b, dec.WindowCountFast)
		})
	}
}

func ftoa2(f float64) string {
	switch f {
	case 0.001:
		return "0.1%"
	case 0.01:
		return "1%"
	case 0.04:
		return "4%"
	case 0.25:
		return "25%"
	}
	return ftoa(f)
}

// BenchmarkWindowParallel: one large window (>= 25% of the space) per
// op through the chunked kernel at forced worker counts. On a
// single-core host this measures the kernel's coordination overhead,
// not speedup; with more cores the per-op time should drop as workers
// increase.
func BenchmarkWindowParallel(b *testing.B) {
	benchData()
	ix := core.Build(benchRoads, core.Options{NX: benchGrid, NY: benchGrid})
	queries := datagen.Windows(benchRoads, datagen.QuerySpec{
		N: 64, RelExtent: 0.25, Seed: benchSeed + 9})
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run("workers="+itoa(workers), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			total := 0
			for i := 0; i < b.N; i++ {
				n := 0
				ix.WindowOrdered(queries[i%len(queries)], workers, func(spatial.Entry) { n++ })
				total += n
			}
			benchSink = total
		})
	}
}

// BenchmarkIntersects: the early-stopping existence probe on the Table-5
// workload. This path is gated off the parallel kernel (a probe that
// stops at the first match must never pay a full fan-out scan), so it
// should stay near-constant per op.
func BenchmarkIntersects(b *testing.B) {
	benchData()
	ix := core.Build(benchRoads, core.Options{NX: benchGrid, NY: benchGrid})
	b.ReportAllocs()
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		if ix.Intersects(benchWindows[i%len(benchWindows)]) {
			hits++
		}
	}
	benchSink = hits
}
