package twolayer

import (
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"time"

	"github.com/twolayer/twolayer/internal/core"
	"github.com/twolayer/twolayer/internal/shard"
	"github.com/twolayer/twolayer/internal/spatial"
)

// ShardedOptions configure the sharded engine on top of Options.
type ShardedOptions struct {
	// Shards is the number of spatial shards. <= 0 selects
	// runtime.NumCPU(); the count is always clamped to the grid's column
	// count (a shard owns at least one tile column).
	Shards int
}

func (so ShardedOptions) resolved() int {
	if so.Shards <= 0 {
		return runtime.NumCPU()
	}
	return so.Shards
}

// Sharded is a scatter-gather engine over S self-contained two-layer
// indices, each owning a contiguous slab of the grid's tile columns.
// Queries whose MBR lands in one slab run directly against that shard;
// wider queries fan out in parallel and merge, deduplicating
// boundary-replicated objects with the same reference-tile idea the
// two-layer scheme uses inside a shard (see docs/SHARDING.md).
//
// Sharded exposes only the unified query surface — Search, SearchIDs,
// SearchCount, KNN, KNNExact, BatchCounts — not the legacy
// shape-specific variants. It is safe for any number of concurrent
// readers.
type Sharded struct {
	eng *shard.Engine
}

// BuildShardedRects builds a sharded engine over rectangle objects.
// Object i gets ID i. Shards build in parallel.
func BuildShardedRects(rects []Rect, opts Options, so ShardedOptions) *Sharded {
	d := spatial.NewDataset(rects)
	return &Sharded{eng: shard.Build(d, opts.autoTuned(d.Len()), so.resolved())}
}

// BuildShardedGeoms builds a sharded engine over exact geometries
// (indexed by their MBRs). Object i gets ID i. Shards build in parallel.
func BuildShardedGeoms(geoms []Geometry, opts Options, so ShardedOptions) *Sharded {
	d := spatial.NewGeomDataset(geoms)
	return &Sharded{eng: shard.Build(d, opts.autoTuned(d.Len()), so.resolved())}
}

// Search evaluates q scatter-gather and streams every matching object to
// fn exactly once, on the caller's goroutine; fn returns false to stop
// early. Semantics match Index.Search — same completion flag, same
// errors — plus parallel fan-out when the query spans several shards.
func (s *Sharded) Search(q Query, fn func(id ID, mbr Rect) bool) (complete bool, err error) {
	return s.eng.Search(q.toCore(), func(e spatial.Entry) bool {
		return fn(e.ID, e.Rect)
	}, nil)
}

// SearchIDs evaluates q and returns all matching IDs, appending to buf
// (which may be nil).
func (s *Sharded) SearchIDs(q Query, buf []ID) ([]ID, error) {
	return s.eng.SearchIDs(q.toCore(), buf)
}

// SearchCount evaluates q and returns the number of matching objects; a
// Limit caps the count. Fanned-out shards count independently, without
// buffering results.
func (s *Sharded) SearchCount(q Query) (int, error) {
	return s.eng.SearchCount(q.toCore(), nil)
}

// KNN returns the k objects whose MBRs are nearest to q, ascending by
// distance (ties broken by ID). All shards answer in parallel and merge
// through a k-way heap. Unlike Index.KNN it needs no external
// synchronization — each call uses private scratch space.
func (s *Sharded) KNN(q Point, k int) []Neighbor {
	return s.eng.KNN(q, k, false, nil)
}

// KNNExact returns the k objects whose exact geometries are nearest to
// q. Requires an engine built with BuildShardedRects or
// BuildShardedGeoms.
func (s *Sharded) KNNExact(q Point, k int) []Neighbor {
	return s.eng.KNN(q, k, true, nil)
}

// BatchCounts evaluates a batch of queries and returns per-query result
// counts. Every query must be a plain (non-exact, unlimited) window or
// disk; each shard runs its local batch kernel with the given strategy
// and thread count over the queries covering it.
func (s *Sharded) BatchCounts(queries []Query, strategy BatchStrategy, threads int) ([]int, error) {
	counts := make([]int, len(queries))
	var windows []Rect
	var windowAt []int
	var disks []Disk
	var diskAt []int
	for i, q := range queries {
		if q.Exact || q.Limit != 0 || q.Region != nil {
			return nil, fmt.Errorf(
				"twolayer: BatchCounts query %d must be a plain window or disk (no Exact, Limit, or Region)", i)
		}
		switch {
		case q.Window != nil && q.Disk == nil:
			windows = append(windows, *q.Window)
			windowAt = append(windowAt, i)
		case q.Disk != nil && q.Window == nil:
			disks = append(disks, *q.Disk)
			diskAt = append(diskAt, i)
		default:
			return nil, fmt.Errorf(
				"twolayer: BatchCounts query %d must set exactly one of Window and Disk", i)
		}
	}
	if len(windows) > 0 {
		for j, n := range s.eng.BatchWindowCounts(windows, strategy, threads) {
			counts[windowAt[j]] = n
		}
	}
	if len(disks) > 0 {
		for j, n := range s.eng.BatchDiskCounts(disks, strategy, threads) {
			counts[diskAt[j]] = n
		}
	}
	return counts, nil
}

// ShardSpan records one shard's contribution to a traced query: which
// shard scanned, its wall time, and how many results it contributed
// after deduplication.
type ShardSpan struct {
	Shard     int
	ElapsedUS int64
	Results   int
}

// ShardedView is a per-request tracing view of a Sharded engine: every
// query run through it appends its per-shard fan-out spans to Spans.
// Views are cheap; use one per request and read Spans when done. The
// view itself is not safe for concurrent use (the engine is).
type ShardedView struct {
	s *Sharded
	// Spans accumulates one entry per shard scanned, across all queries
	// run through the view.
	Spans []ShardSpan
}

// Traced returns a fresh tracing view of the engine.
func (s *Sharded) Traced() *ShardedView { return &ShardedView{s: s} }

func (v *ShardedView) capture(spans []shard.Span) {
	for _, sp := range spans {
		v.Spans = append(v.Spans, ShardSpan{
			Shard:     sp.Shard,
			ElapsedUS: sp.ElapsedNS / 1e3,
			Results:   sp.Results,
		})
	}
}

// Search is Sharded.Search with span capture.
func (v *ShardedView) Search(q Query, fn func(id ID, mbr Rect) bool) (bool, error) {
	var spans []shard.Span
	complete, err := v.s.eng.Search(q.toCore(), func(e spatial.Entry) bool {
		return fn(e.ID, e.Rect)
	}, &spans)
	v.capture(spans)
	return complete, err
}

// SearchCount is Sharded.SearchCount with span capture.
func (v *ShardedView) SearchCount(q Query) (int, error) {
	var spans []shard.Span
	n, err := v.s.eng.SearchCount(q.toCore(), &spans)
	v.capture(spans)
	return n, err
}

// KNN is Sharded.KNN with span capture.
func (v *ShardedView) KNN(q Point, k int) []Neighbor {
	var spans []shard.Span
	out := v.s.eng.KNN(q, k, false, &spans)
	v.capture(spans)
	return out
}

// KNNExact is Sharded.KNNExact with span capture.
func (v *ShardedView) KNNExact(q Point, k int) []Neighbor {
	var spans []shard.Span
	out := v.s.eng.KNN(q, k, true, &spans)
	v.capture(spans)
	return out
}

// Len returns the number of distinct objects (boundary replicas counted
// once).
func (s *Sharded) Len() int { return s.eng.Len() }

// Shards returns the shard count.
func (s *Sharded) Shards() int { return s.eng.Shards() }

// Epoch returns the maximum shard epoch — shards publish independently,
// so this is an advisory high-water mark.
func (s *Sharded) Epoch() uint64 { return s.eng.Epoch() }

// GridDims returns the global grid's tile counts per dimension (the
// union of all shard slabs).
func (s *Sharded) GridDims() (nx, ny int) { return s.eng.GridDims() }

// Space returns the indexed region.
func (s *Sharded) Space() Rect { return s.eng.Space() }

// HasExactGeometries reports whether the engine can answer exact
// queries (Exact descriptors, KNNExact).
func (s *Sharded) HasExactGeometries() bool { return s.eng.HasExactGeometries() }

// MemoryFootprint approximates entry storage across all shards,
// including cross-shard replicas.
func (s *Sharded) MemoryFootprint() int { return s.eng.MemoryFootprint() }

// ReplicationFactor reports stored entries (tile and shard replicas)
// per distinct object.
func (s *Sharded) ReplicationFactor() float64 { return s.eng.ReplicationFactor() }

// PartitionStats merges the per-shard partitioning summaries; Replicas
// and the derived ratios include cross-shard boundary copies.
func (s *Sharded) PartitionStats() PartitionStats { return s.eng.PartitionStats() }

// EstimateWindow predicts the result cardinality of a window query by
// summing the per-shard O(tiles) estimates over the shards the window
// covers. Within a shard the estimate undercounts heavily replicated
// data; across shards, boundary-crossing objects are counted once per
// holding shard, which overcounts. Treat it as a planning signal, not a
// count.
func (s *Sharded) EstimateWindow(w Rect) float64 { return s.eng.EstimateWindow(w) }

// QueryPathStats sums the adaptive query-execution counters over all
// shards (see Index.QueryPathStats).
func (s *Sharded) QueryPathStats() PathStats { return s.eng.QueryPathStats() }

// ShardStat is the per-shard slice of ShardedStats.
type ShardStat = shard.ShardStat

// ShardedStats snapshots the engine's scatter-gather counters: fast-path
// vs fan-out query totals and, per shard, stored entries, epoch, routed
// queries, cumulative scan time, and results contributed.
type ShardedStats = shard.Stats

// Stats snapshots the scatter-gather counters. Counters are cumulative
// over the engine's lifetime and shared with every snapshot of a
// ShardedLive.
func (s *Sharded) Stats() ShardedStats { return s.eng.Stats() }

// ShardedLive is the updatable sharded engine: one independent apply
// loop (and, under OpenShardedDurable, one WAL) per shard, so mutation
// batches touching disjoint slabs journal, apply, and publish in
// parallel. Consistency is per shard — each shard keeps Live's
// guarantees (atomic batch visibility, read-your-writes), while a
// cross-shard batch becomes visible shard by shard and a Snapshot may
// interleave epochs across shards. Queries stay duplicate-free
// throughout. All methods are safe for concurrent use.
type ShardedLive struct {
	l *shard.Live
}

// NewShardedLive returns an empty updatable sharded engine. Options.
// Space must be set (there is no data to derive it from).
func NewShardedLive(opts Options, lo LiveOptions, so ShardedOptions) (*ShardedLive, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.Space == (Rect{}) {
		return nil, errors.New("twolayer: NewShardedLive requires Options.Space (no data to derive it from)")
	}
	return &ShardedLive{l: shard.NewLive(opts.toCore(), lo.toCore(), so.resolved())}, nil
}

// ShardedLiveFrom wraps a built engine, which becomes the epoch-0 state
// of every shard. It takes ownership of s: do not query s directly
// afterward. Snapshots serve the filtering layer (MBR queries) only.
func ShardedLiveFrom(s *Sharded, lo LiveOptions) *ShardedLive {
	return &ShardedLive{l: shard.LiveFrom(s.engine(), lo.toCore())}
}

// engine exposes the internal engine to sibling constructors.
func (s *Sharded) engine() *shard.Engine { return s.eng }

// Snapshot returns an immutable engine over the shards' current
// snapshots — S atomic loads, no locks. Pin one snapshot per request.
func (sl *ShardedLive) Snapshot() *Sharded {
	return &Sharded{eng: sl.l.Snapshot()}
}

// Insert adds one object, blocking until every shard its MBR intersects
// has published the insertion. Invalid rectangles are reported as an
// error.
func (sl *ShardedLive) Insert(id ID, mbr Rect) (epoch uint64, err error) {
	return sl.l.Insert(core.Mutation{Entry: spatial.Entry{ID: id, Rect: mbr}})
}

// Delete removes the object with the given ID and exact MBR from every
// shard holding a replica, reporting whether it was found anywhere.
func (sl *ShardedLive) Delete(id ID, mbr Rect) (found bool, epoch uint64, err error) {
	return sl.l.Delete(core.Mutation{Entry: spatial.Entry{ID: id, Rect: mbr}})
}

// Apply routes each mutation to every shard its rectangle intersects
// and applies the per-shard batches concurrently, blocking until all
// involved shards have published. Validation is all-or-nothing (an
// invalid rectangle rejects the whole batch before anything is
// enqueued); visibility is atomic per shard, not across shards.
func (sl *ShardedLive) Apply(muts []Mutation) (ApplyResult, error) {
	cms := make([]core.Mutation, len(muts))
	for i, m := range muts {
		cms[i] = core.Mutation{
			Delete: m.Delete,
			Entry:  spatial.Entry{ID: m.ID, Rect: m.MBR},
		}
	}
	return sl.l.Apply(cms)
}

// Len returns the number of distinct objects currently indexed.
func (sl *ShardedLive) Len() int { return sl.l.Len() }

// Shards returns the shard count.
func (sl *ShardedLive) Shards() int { return sl.l.Shards() }

// Stats aggregates the per-shard apply-loop counters (sums for
// throughput counters, maxima for Epoch and LastPublish, the distinct
// object count for Objects).
func (sl *ShardedLive) Stats() LiveStats { return sl.l.Stats() }

// ShardStats snapshots the engine's scatter-gather counters.
func (sl *ShardedLive) ShardStats() ShardedStats { return sl.l.Snapshot().Stats() }

// Close drains and stops every shard's apply loop. Idempotent.
func (sl *ShardedLive) Close() { sl.l.Close() }

// ShardedDurableOptions configure OpenShardedDurable; the WAL knobs
// apply to every shard's log.
type ShardedDurableOptions struct {
	// Dir is the sharded durability directory: a layout manifest
	// (shards.json) plus one WAL subdirectory per shard. Created if
	// missing. Required.
	Dir string
	// Fsync selects the sync discipline of every shard's log (default
	// SyncInterval); FsyncInterval, SegmentBytes, and CheckpointEvery
	// match DurableOptions and apply per shard.
	Fsync           SyncPolicy
	FsyncInterval   time.Duration
	SegmentBytes    int64
	CheckpointEvery int
	// Seed, when non-nil and Dir holds no prior state, becomes the
	// initial engine: its layout defines the manifest and each shard is
	// checkpointed before mutations are accepted. Ignored (with a logged
	// notice) when Dir already has state. OpenShardedDurable takes
	// ownership of the seed.
	Seed *Sharded
	// Logger receives recovery and background-error notices. Defaults to
	// slog.Default().
	Logger *slog.Logger
}

// ShardedDurable couples a ShardedLive with one write-ahead log per
// shard: mutation batches journal in parallel per shard before they are
// acknowledged, and reopening recovers all shards concurrently under
// the layout pinned in the directory's manifest.
type ShardedDurable struct {
	d    *shard.Durable
	live *ShardedLive
}

// OpenShardedDurable opens (or cold-starts) a sharded durable engine in
// do.Dir. On a cold start the layout comes from do.Seed or from
// opts/so — opts must then carry a Space — and the manifest is written
// before any shard accepts mutations. When the directory holds prior
// state, the manifest's layout supersedes opts and so (logged when they
// disagree) and do.Seed is ignored. The returned RecoveryInfo slice has
// one entry per shard.
func OpenShardedDurable(opts Options, lo LiveOptions, do ShardedDurableOptions, so ShardedOptions) (*ShardedDurable, []RecoveryInfo, error) {
	if err := opts.Validate(); err != nil {
		return nil, nil, err
	}
	if opts.Space == (Rect{}) && do.Seed == nil && !shard.HasState(do.Dir) {
		return nil, nil, errors.New(
			"twolayer: OpenShardedDurable on an empty dir requires Options.Space or a Seed")
	}
	var seed *shard.Engine
	if do.Seed != nil {
		seed = do.Seed.engine()
	}
	d, infos, err := shard.Open(opts.toCore(), lo.toCore(), shard.DurableOptions{
		Dir:             do.Dir,
		Policy:          do.Fsync,
		SyncEvery:       do.FsyncInterval,
		SegmentBytes:    do.SegmentBytes,
		CheckpointEvery: do.CheckpointEvery,
		Logger:          do.Logger,
	}, so.resolved(), seed)
	if err != nil {
		return nil, infos, err
	}
	return &ShardedDurable{d: d, live: &ShardedLive{l: d.Live()}}, infos, nil
}

// Live returns the updatable engine; mutations submitted through it are
// journaled per shard before they are acknowledged.
func (d *ShardedDurable) Live() *ShardedLive { return d.live }

// Snapshot returns an immutable engine over the current shard
// snapshots; shorthand for Live().Snapshot().
func (d *ShardedDurable) Snapshot() *Sharded { return d.live.Snapshot() }

// Checkpoint checkpoints every shard concurrently, returning the
// maximum checkpointed epoch and the first per-shard error (other
// shards still complete).
func (d *ShardedDurable) Checkpoint() (uint64, error) { return d.d.Checkpoint() }

// Stats aggregates the per-shard durability counters: sums for
// throughput and size, the minimum checkpoint epoch (the replay bound
// is the least-checkpointed shard), the first failure encountered.
func (d *ShardedDurable) Stats() DurabilityStats { return d.d.Stats() }

// Close stops every shard's apply loop and WAL with a final flush,
// returning the combined close errors.
func (d *ShardedDurable) Close() error { return d.d.Close() }
