package twolayer

import (
	"errors"
	"log/slog"
	"time"

	"github.com/twolayer/twolayer/internal/core"
	"github.com/twolayer/twolayer/internal/wal"
)

// SyncPolicy selects when the write-ahead log fsyncs appended mutation
// batches; see the policy constants.
type SyncPolicy = wal.SyncPolicy

// Fsync policies for DurableOptions.Fsync.
const (
	// SyncInterval (the default) fsyncs in the background every
	// DurableOptions.FsyncInterval: full durability across process
	// crashes, up to one interval of acknowledged tail lost on an OS or
	// power crash.
	SyncInterval = wal.SyncInterval
	// SyncAlways fsyncs every mutation batch before it is acknowledged:
	// nothing acknowledged is ever lost, at a heavy per-batch latency
	// cost on most filesystems.
	SyncAlways = wal.SyncAlways
	// SyncNone leaves flushing to the OS entirely.
	SyncNone = wal.SyncNone
)

// ParseSyncPolicy maps the flag spellings "always", "interval", "none".
func ParseSyncPolicy(s string) (SyncPolicy, error) { return wal.ParseSyncPolicy(s) }

// RecoveryInfo reports what OpenDurable found on disk and how much log
// it replayed.
type RecoveryInfo = wal.RecoveryInfo

// DurabilityStats is a point-in-time view of the durability engine:
// log segments and bytes, append/fsync/rotation/prune counters,
// checkpoint epoch and age, and the recovery summary from startup.
type DurabilityStats = wal.Stats

// DurableOptions configure OpenDurable.
type DurableOptions struct {
	// Dir is the durability directory holding log segments and
	// checkpoints; created if missing. Required.
	Dir string
	// Fsync selects the log's sync discipline (default SyncInterval).
	Fsync SyncPolicy
	// FsyncInterval is the background flush period under SyncInterval.
	// Defaults to 100ms.
	FsyncInterval time.Duration
	// SegmentBytes is the log segment rotation threshold (default 8 MiB).
	SegmentBytes int64
	// CheckpointEvery writes an automatic checkpoint after this many
	// journaled mutations: 0 means the default of 65536, negative
	// disables automatic checkpoints.
	CheckpointEvery int
	// Seed, when non-nil and Dir holds no prior state, becomes the
	// initial index and is checkpointed immediately. Ignored (with a
	// logged notice) when Dir already has state — recovered state always
	// wins. OpenDurable takes ownership of the seed.
	Seed *Index
	// Logger receives recovery and background-error notices. Defaults to
	// slog.Default().
	Logger *slog.Logger
}

// DurableLive is a Live index backed by the durability engine: every
// mutation batch is written ahead to a segmented, CRC-framed log before
// it is acknowledged, checkpoints bound recovery time, and OpenDurable
// restores exactly the acknowledged state after a crash — tolerating a
// torn or corrupt log tail by truncating at the first bad frame.
// All methods are safe for concurrent use.
type DurableLive struct {
	d    *wal.DurableLive
	live *Live
}

// OpenDurable opens (or cold-starts) the durable live index stored in
// do.Dir. When the directory holds prior state, opts and do.Seed are
// superseded by recovery: the newest readable checkpoint is loaded and
// the log tail replayed on top. On a cold start the index comes from
// do.Seed, or is built empty from opts — which must then carry a Space,
// as with NewLive.
func OpenDurable(opts Options, lo LiveOptions, do DurableOptions) (*DurableLive, RecoveryInfo, error) {
	if err := opts.Validate(); err != nil {
		return nil, RecoveryInfo{}, err
	}
	if opts.Space == (Rect{}) && do.Seed == nil {
		has, err := wal.HasState(do.Dir)
		if err != nil {
			return nil, RecoveryInfo{}, err
		}
		if !has {
			return nil, RecoveryInfo{}, errors.New(
				"twolayer: OpenDurable on an empty dir requires Options.Space or DurableOptions.Seed")
		}
	}
	var seed *core.Index
	if do.Seed != nil {
		seed = do.Seed.core
	}
	d, info, err := wal.Open(wal.Options{
		Dir:             do.Dir,
		Policy:          do.Fsync,
		SyncEvery:       do.FsyncInterval,
		SegmentBytes:    do.SegmentBytes,
		CheckpointEvery: do.CheckpointEvery,
		Index:           opts.toCore(),
		Live:            lo.toCore(),
		Seed:            seed,
		Logger:          do.Logger,
	})
	if err != nil {
		return nil, info, err
	}
	return &DurableLive{d: d, live: &Live{live: d.Live()}}, info, nil
}

// Live returns the updatable index. Mutations submitted through it are
// journaled before they are acknowledged — the write-ahead hook lives
// inside the apply loop, so there is no undurable side door.
func (d *DurableLive) Live() *Live { return d.live }

// Snapshot returns the current published snapshot as a private read
// view; shorthand for Live().Snapshot().
func (d *DurableLive) Snapshot() *Index { return d.live.Snapshot() }

// Checkpoint writes the current snapshot as a checkpoint file and
// prunes log segments it covers, without pausing writers or readers.
// It returns the checkpointed epoch and is a no-op when nothing was
// published since the last checkpoint.
func (d *DurableLive) Checkpoint() (uint64, error) { return d.d.Checkpoint() }

// Stats reports the durability engine's counters.
func (d *DurableLive) Stats() DurabilityStats { return d.d.Stats() }

// Close drains and closes the live index, journaling its final batches,
// then closes the log with a final fsync. Close is idempotent.
func (d *DurableLive) Close() error { return d.d.Close() }
