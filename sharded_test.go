package twolayer_test

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"

	twolayer "github.com/twolayer/twolayer"
)

// shardCountsUnderTest is the shard-count sweep of the equivalence
// property tests: degenerate (1), even split, odd split, and whatever
// the host machine would pick by default.
func shardCountsUnderTest() []int {
	counts := []int{1, 2, 7, runtime.NumCPU()}
	seen := make(map[int]bool)
	out := counts[:0]
	for _, c := range counts {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// sameNeighbors compares two k-nearest result lists, tolerating
// tie-order freedom: the distance sequences must match exactly, and
// each group of equal distances must hold the same ID set — except the
// trailing group, where the k cutoff makes any equally-near subset
// valid.
func sameNeighbors(t *testing.T, label string, got, want []twolayer.Neighbor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d neighbors, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].Dist != want[i].Dist {
			t.Fatalf("%s: neighbor %d dist = %g, want %g", label, i, got[i].Dist, want[i].Dist)
		}
	}
	for i := 0; i < len(want); {
		j := i
		for j < len(want) && want[j].Dist == want[i].Dist {
			j++
		}
		if j == len(want) {
			break // trailing tie group: any equally-near subset is valid
		}
		g := make(map[twolayer.ID]bool, j-i)
		for _, n := range got[i:j] {
			g[n.ID] = true
		}
		for _, n := range want[i:j] {
			if !g[n.ID] {
				t.Fatalf("%s: neighbors at dist %g differ: ID %d missing", label, n.Dist, n.ID)
			}
		}
		i = j
	}
}

func sameIDs(t *testing.T, label string, got, want []twolayer.ID) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d IDs, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: ID mismatch at %d: got %d, want %d", label, i, got[i], want[i])
		}
	}
}

// TestShardedEquivalence is the central property test of the sharded
// engine: for every shard count in the sweep, window, disk, count, and
// limited queries over the scatter-gather engine return byte-identical
// sorted ID sets to the single-index engine over the same data.
func TestShardedEquivalence(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	// Mix small rects with wide horizontal slabs so plenty of objects
	// straddle shard boundaries and exercise the dedup rule.
	rects := randRects(rnd, 3000, 0.04)
	for i := 0; i < 200; i++ {
		y := rnd.Float64()
		rects = append(rects, twolayer.Rect{
			MinX: rnd.Float64() * 0.5, MinY: y,
			MaxX: 0.5 + rnd.Float64()*0.5, MaxY: y + 0.01,
		})
	}
	opts := twolayer.Options{GridSize: 32}
	oracle := twolayer.BuildRects(rects, opts)

	type shape struct {
		name string
		q    twolayer.Query
	}
	var shapes []shape
	for i := 0; i < 25; i++ {
		x, y := rnd.Float64(), rnd.Float64()
		w := twolayer.Rect{MinX: x, MinY: y, MaxX: x + 0.3, MaxY: y + 0.3}
		shapes = append(shapes, shape{fmt.Sprintf("window-%d", i), twolayer.Query{Window: &w}})
	}
	// Thin full-width bands force maximal fan-out; the full space hits
	// every shard and every object.
	for i := 0; i < 5; i++ {
		y := rnd.Float64()
		w := twolayer.Rect{MinX: 0, MinY: y, MaxX: 1, MaxY: y + 0.02}
		shapes = append(shapes, shape{fmt.Sprintf("band-%d", i), twolayer.Query{Window: &w}})
	}
	all := twolayer.Rect{MinX: 0, MinY: 0, MaxX: 1.1, MaxY: 1.1}
	shapes = append(shapes, shape{"full-space", twolayer.Query{Window: &all}})
	for i := 0; i < 20; i++ {
		d := twolayer.Disk{
			Center: twolayer.Point{X: rnd.Float64(), Y: rnd.Float64()},
			Radius: 0.05 + rnd.Float64()*0.25,
		}
		shapes = append(shapes, shape{fmt.Sprintf("disk-%d", i), twolayer.Query{Disk: &d}})
	}

	for _, shards := range shardCountsUnderTest() {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			sh := twolayer.BuildShardedRects(rects, opts, twolayer.ShardedOptions{Shards: shards})
			if sh.Len() != oracle.Len() {
				t.Fatalf("Len = %d, want %d", sh.Len(), oracle.Len())
			}
			for _, sc := range shapes {
				want, err := oracle.SearchIDs(sc.q, nil)
				if err != nil {
					t.Fatalf("%s: oracle: %v", sc.name, err)
				}
				got, err := sh.SearchIDs(sc.q, nil)
				if err != nil {
					t.Fatalf("%s: sharded: %v", sc.name, err)
				}
				sameIDs(t, sc.name, sorted(got), sorted(want))

				n, err := sh.SearchCount(sc.q)
				if err != nil {
					t.Fatalf("%s: count: %v", sc.name, err)
				}
				if n != len(want) {
					t.Fatalf("%s: count = %d, want %d", sc.name, n, len(want))
				}

				// A limit caps both streamed results and counts at exactly
				// min(limit, total), and reports the query incomplete when it
				// bites.
				if len(want) > 1 {
					lim := sc.q
					lim.Limit = len(want) / 2
					ids, err := sh.SearchIDs(lim, nil)
					if err != nil {
						t.Fatalf("%s: limited: %v", sc.name, err)
					}
					if len(ids) != lim.Limit {
						t.Fatalf("%s: limited returned %d, want %d", sc.name, len(ids), lim.Limit)
					}
					cn, err := sh.SearchCount(lim)
					if err != nil || cn != lim.Limit {
						t.Fatalf("%s: limited count = %d (err %v), want %d", sc.name, cn, err, lim.Limit)
					}
					complete, err := sh.Search(lim, func(twolayer.ID, twolayer.Rect) bool { return true })
					if err != nil || complete {
						t.Fatalf("%s: limited query reported complete=%v err=%v", sc.name, complete, err)
					}
				}
			}

			// kNN merges to the same (ID, Dist) sequence as the single
			// index: the k-way heap tie-breaks by ID like core does.
			for i := 0; i < 10; i++ {
				p := twolayer.Point{X: rnd.Float64(), Y: rnd.Float64()}
				sameNeighbors(t, fmt.Sprintf("knn-%d", i), sh.KNN(p, 17), oracle.KNN(p, 17))
			}

			// The engine's own counters must classify the traffic: the full
			// sweep above certainly fanned out (unless there is one shard).
			st := sh.Stats()
			if shards > 1 && st.Fanout == 0 {
				t.Error("no fan-out queries recorded despite full-space windows")
			}
			if got := len(st.PerShard); got != sh.Shards() {
				t.Errorf("Stats().PerShard has %d entries, engine has %d shards", got, sh.Shards())
			}
		})
	}
}

// TestShardedExactEquivalence checks exact-geometry refinement through
// the scatter-gather path: triangles whose MBRs overstate them, so the
// refinement step actually rejects candidates.
func TestShardedExactEquivalence(t *testing.T) {
	rnd := rand.New(rand.NewSource(8))
	geoms := make([]twolayer.Geometry, 800)
	for i := range geoms {
		x, y := rnd.Float64(), rnd.Float64()
		geoms[i] = twolayer.NewPolygon(
			twolayer.Point{X: x, Y: y},
			twolayer.Point{X: x + rnd.Float64()*0.1, Y: y + rnd.Float64()*0.02},
			twolayer.Point{X: x + rnd.Float64()*0.02, Y: y + rnd.Float64()*0.1},
		)
	}
	opts := twolayer.Options{GridSize: 24}
	oracle := twolayer.BuildGeoms(geoms, opts)

	for _, shards := range shardCountsUnderTest() {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			sh := twolayer.BuildShardedGeoms(geoms, opts, twolayer.ShardedOptions{Shards: shards})
			if !sh.HasExactGeometries() {
				t.Fatal("HasExactGeometries = false after BuildShardedGeoms")
			}
			modes := []twolayer.RefineMode{twolayer.RefineSimple, twolayer.RefineAvoid, twolayer.RefineAvoidPlus}
			for i := 0; i < 15; i++ {
				x, y := rnd.Float64(), rnd.Float64()
				w := twolayer.Rect{MinX: x, MinY: y, MaxX: x + 0.4, MaxY: y + 0.4}
				d := twolayer.Disk{
					Center: twolayer.Point{X: rnd.Float64(), Y: rnd.Float64()},
					Radius: 0.05 + rnd.Float64()*0.3,
				}
				for _, mode := range modes {
					for _, q := range []twolayer.Query{
						{Window: &w, Exact: true, Mode: mode},
						{Disk: &d, Exact: true, Mode: mode},
					} {
						want, err := oracle.SearchIDs(q, nil)
						if err != nil {
							t.Fatalf("oracle: %v", err)
						}
						got, err := sh.SearchIDs(q, nil)
						if err != nil {
							t.Fatalf("sharded: %v", err)
						}
						sameIDs(t, fmt.Sprintf("exact-%d mode=%d", i, mode), sorted(got), sorted(want))
					}
				}
			}
			p := twolayer.Point{X: 0.5, Y: 0.5}
			sameNeighbors(t, "KNNExact", sh.KNNExact(p, 9), oracle.KNNExact(p, 9))
		})
	}
}

// TestShardedBatchCounts checks the batched counting path against both
// the unsharded batch kernels and per-query counts, plus its
// descriptor validation.
func TestShardedBatchCounts(t *testing.T) {
	rnd := rand.New(rand.NewSource(9))
	rects := randRects(rnd, 2000, 0.05)
	opts := twolayer.Options{GridSize: 32}
	oracle := twolayer.BuildRects(rects, opts)

	var windows []twolayer.Rect
	var disks []twolayer.Disk
	var queries []twolayer.Query
	for i := 0; i < 40; i++ {
		if i%2 == 0 {
			x, y := rnd.Float64(), rnd.Float64()
			w := twolayer.Rect{MinX: x, MinY: y, MaxX: x + 0.25, MaxY: y + 0.25}
			windows = append(windows, w)
			queries = append(queries, twolayer.Query{Window: &windows[len(windows)-1]})
		} else {
			d := twolayer.Disk{
				Center: twolayer.Point{X: rnd.Float64(), Y: rnd.Float64()},
				Radius: rnd.Float64() * 0.2,
			}
			disks = append(disks, d)
			queries = append(queries, twolayer.Query{Disk: &disks[len(disks)-1]})
		}
	}
	wantW := oracle.BatchWindowCounts(windows, twolayer.QueriesBased, 4)
	wantD := oracle.BatchDiskCounts(disks, twolayer.QueriesBased, 4)

	for _, shards := range shardCountsUnderTest() {
		sh := twolayer.BuildShardedRects(rects, opts, twolayer.ShardedOptions{Shards: shards})
		got, err := sh.BatchCounts(queries, twolayer.QueriesBased, 4)
		if err != nil {
			t.Fatalf("shards=%d: BatchCounts: %v", shards, err)
		}
		wi, di := 0, 0
		for i, q := range queries {
			var want int
			if q.Window != nil {
				want = wantW[wi]
				wi++
			} else {
				want = wantD[di]
				di++
			}
			if got[i] != want {
				t.Fatalf("shards=%d: query %d count = %d, want %d", shards, i, got[i], want)
			}
		}
	}

	// Only plain window/disk descriptors are batchable.
	sh := twolayer.BuildShardedRects(rects, opts, twolayer.ShardedOptions{Shards: 4})
	w := twolayer.Rect{MaxX: 1, MaxY: 1}
	for _, bad := range []twolayer.Query{
		{Window: &w, Exact: true},
		{Window: &w, Limit: 5},
		{Region: twolayer.NewPolygon(twolayer.Point{}, twolayer.Point{X: 1}, twolayer.Point{Y: 1})},
	} {
		if _, err := sh.BatchCounts([]twolayer.Query{bad}, twolayer.QueriesBased, 0); err == nil {
			t.Errorf("BatchCounts accepted unsupported descriptor %+v", bad)
		}
	}
}

// TestShardedSearchValidation pins descriptor validation and early
// termination on the sharded surface.
func TestShardedSearchValidation(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	rects := randRects(rnd, 500, 0.05)
	sh := twolayer.BuildShardedRects(rects, twolayer.Options{GridSize: 16}, twolayer.ShardedOptions{Shards: 4})

	if _, err := sh.Search(twolayer.Query{}, func(twolayer.ID, twolayer.Rect) bool { return true }); err == nil {
		t.Error("shapeless query accepted")
	}
	w := twolayer.Rect{MaxX: 1, MaxY: 1}
	d := twolayer.Disk{Radius: 1}
	if _, err := sh.SearchCount(twolayer.Query{Window: &w, Disk: &d}); err == nil {
		t.Error("two-shape query accepted")
	}
	if _, err := sh.SearchIDs(twolayer.Query{Window: &w, Limit: -1}, nil); err == nil {
		t.Error("negative limit accepted")
	}
	// A live snapshot drops the dataset, so it cannot refine.
	sl, err := twolayer.NewShardedLive(
		twolayer.Options{GridSize: 8, Space: twolayer.Rect{MaxX: 1, MaxY: 1}},
		twolayer.LiveOptions{}, twolayer.ShardedOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sl.Close()
	if _, err := sl.Snapshot().SearchCount(twolayer.Query{Window: &w, Exact: true}); err == nil {
		t.Error("exact query accepted on a snapshot without geometries")
	}
	// fn stopping the scan reports an incomplete query.
	complete, err := sh.Search(twolayer.Query{Window: &w}, func(twolayer.ID, twolayer.Rect) bool { return false })
	if err != nil || complete {
		t.Errorf("early-stopped query: complete=%v err=%v", complete, err)
	}

	// Traced views capture one span per shard scanned.
	view := sh.Traced()
	if _, err := view.SearchCount(twolayer.Query{Window: &w}); err != nil {
		t.Fatal(err)
	}
	if len(view.Spans) == 0 {
		t.Error("traced view recorded no spans")
	}
	for _, sp := range view.Spans {
		if sp.Shard < 0 || sp.Shard >= sh.Shards() {
			t.Errorf("span names shard %d of %d", sp.Shard, sh.Shards())
		}
	}
}

// TestBatchStrategySymmetry pins the strategy/threads handling of the
// window and disk batch kernels to be symmetric: an unknown strategy
// falls back to the default, and non-positive thread counts resolve to
// the same results as the explicit defaults — for both shapes.
func TestBatchStrategySymmetry(t *testing.T) {
	rnd := rand.New(rand.NewSource(5))
	rects := randRects(rnd, 1500, 0.05)
	idx := twolayer.BuildRects(rects, twolayer.Options{GridSize: 32})

	var windows []twolayer.Rect
	var disks []twolayer.Disk
	for i := 0; i < 24; i++ {
		x, y := rnd.Float64(), rnd.Float64()
		windows = append(windows, twolayer.Rect{MinX: x, MinY: y, MaxX: x + 0.2, MaxY: y + 0.2})
		disks = append(disks, twolayer.Disk{
			Center: twolayer.Point{X: rnd.Float64(), Y: rnd.Float64()},
			Radius: rnd.Float64() * 0.15,
		})
	}
	wantW := idx.BatchWindowCounts(windows, twolayer.QueriesBased, 4)
	wantD := idx.BatchDiskCounts(disks, twolayer.QueriesBased, 4)

	variants := []struct {
		name     string
		strategy twolayer.BatchStrategy
		threads  int
	}{
		{"tiles-based", twolayer.TilesBased, 4},
		{"unknown-strategy", twolayer.BatchStrategy(99), 4},
		{"zero-threads", twolayer.QueriesBased, 0},
		{"negative-threads", twolayer.TilesBased, -3},
	}
	for _, v := range variants {
		gotW := idx.BatchWindowCounts(windows, v.strategy, v.threads)
		gotD := idx.BatchDiskCounts(disks, v.strategy, v.threads)
		for i := range wantW {
			if gotW[i] != wantW[i] {
				t.Errorf("%s: window %d count = %d, want %d", v.name, i, gotW[i], wantW[i])
			}
		}
		for i := range wantD {
			if gotD[i] != wantD[i] {
				t.Errorf("%s: disk %d count = %d, want %d", v.name, i, gotD[i], wantD[i])
			}
		}
	}
}

// TestShardedLiveMutateWhileQuery is the -race stress test: writers
// stream mutation batches through a ShardedLive while readers pin
// snapshots and query them, then the final contents are checked against
// the deterministic expected set.
func TestShardedLiveMutateWhileQuery(t *testing.T) {
	sl, err := twolayer.NewShardedLive(
		twolayer.Options{GridSize: 16, Space: twolayer.Rect{MaxX: 1, MaxY: 1}},
		twolayer.LiveOptions{},
		twolayer.ShardedOptions{Shards: 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sl.Close()

	const writers = 4
	const perWriter = 300
	rectFor := func(id int) twolayer.Rect {
		rnd := rand.New(rand.NewSource(int64(id)))
		x, y := rnd.Float64(), rnd.Float64()
		return twolayer.Rect{MinX: x, MinY: y, MaxX: x + rnd.Float64()*0.3, MaxY: y + rnd.Float64()*0.05}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers: pin a snapshot, query it, check internal consistency.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(100 + r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := sl.Snapshot()
				w := twolayer.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
				ids, err := snap.SearchIDs(twolayer.Query{Window: &w}, nil)
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				seen := make(map[twolayer.ID]bool, len(ids))
				for _, id := range ids {
					if seen[id] {
						t.Errorf("reader: duplicate ID %d in snapshot", id)
						return
					}
					seen[id] = true
				}
				snap.KNN(twolayer.Point{X: rnd.Float64(), Y: rnd.Float64()}, 5)
			}
		}(r)
	}

	// Writers: insert this writer's ID range in batches, then delete
	// every third object, mixing Apply with single-op Insert/Delete.
	var werr sync.Map
	var ww sync.WaitGroup
	for wtr := 0; wtr < writers; wtr++ {
		ww.Add(1)
		go func(wtr int) {
			defer ww.Done()
			base := wtr * perWriter
			var batch []twolayer.Mutation
			for i := 0; i < perWriter; i++ {
				id := base + i
				batch = append(batch, twolayer.Mutation{ID: twolayer.ID(id), MBR: rectFor(id)})
				if len(batch) == 32 {
					if _, err := sl.Apply(batch); err != nil {
						werr.Store(wtr, err)
						return
					}
					batch = batch[:0]
				}
			}
			if len(batch) > 0 {
				if _, err := sl.Apply(batch); err != nil {
					werr.Store(wtr, err)
					return
				}
			}
			for i := 0; i < perWriter; i += 3 {
				id := base + i
				found, _, err := sl.Delete(twolayer.ID(id), rectFor(id))
				if err != nil {
					werr.Store(wtr, err)
					return
				}
				if !found {
					werr.Store(wtr, fmt.Errorf("delete of %d found nothing", id))
					return
				}
			}
		}(wtr)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	werr.Range(func(k, v any) bool {
		t.Fatalf("writer %v: %v", k, v)
		return false
	})

	// Quiesced: the surviving set is exactly the IDs not divisible by 3
	// within each writer's range.
	var want []twolayer.ID
	for wtr := 0; wtr < writers; wtr++ {
		for i := 0; i < perWriter; i++ {
			if i%3 != 0 {
				want = append(want, twolayer.ID(wtr*perWriter+i))
			}
		}
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })

	snap := sl.Snapshot()
	if snap.Len() != len(want) {
		t.Fatalf("final Len = %d, want %d", snap.Len(), len(want))
	}
	if sl.Len() != len(want) {
		t.Fatalf("live Len = %d, want %d", sl.Len(), len(want))
	}
	w := twolayer.Rect{MinX: 0, MinY: 0, MaxX: 2, MaxY: 2}
	got, err := snap.SearchIDs(twolayer.Query{Window: &w}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameIDs(t, "final contents", sorted(got), want)
}

// TestShardedLiveFromAndSnapshot covers promotion of a built engine to
// a live one and read-your-writes visibility through snapshots.
func TestShardedLiveFromAndSnapshot(t *testing.T) {
	rnd := rand.New(rand.NewSource(4))
	rects := randRects(rnd, 400, 0.05)
	sh := twolayer.BuildShardedRects(rects, twolayer.Options{GridSize: 16}, twolayer.ShardedOptions{Shards: 3})
	sl := twolayer.ShardedLiveFrom(sh, twolayer.LiveOptions{})
	defer sl.Close()

	if sl.Len() != len(rects) {
		t.Fatalf("Len after promote = %d, want %d", sl.Len(), len(rects))
	}
	if sl.Shards() != 3 {
		t.Fatalf("Shards = %d, want 3", sl.Shards())
	}

	// A boundary-straddling insert must be visible exactly once.
	wide := twolayer.Rect{MinX: 0.01, MinY: 0.4, MaxX: 0.99, MaxY: 0.41}
	if _, err := sl.Insert(twolayer.ID(9999), wide); err != nil {
		t.Fatal(err)
	}
	snap := sl.Snapshot()
	n := 0
	if _, err := snap.Search(twolayer.Query{Window: &wide}, func(id twolayer.ID, _ twolayer.Rect) bool {
		if id == 9999 {
			n++
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("inserted object surfaced %d times, want once", n)
	}

	found, _, err := sl.Delete(twolayer.ID(9999), wide)
	if err != nil || !found {
		t.Fatalf("Delete: found=%v err=%v", found, err)
	}
	if sl.Len() != len(rects) {
		t.Fatalf("Len after delete = %d, want %d", sl.Len(), len(rects))
	}

	st := sl.ShardStats()
	if len(st.PerShard) != 3 {
		t.Fatalf("ShardStats has %d shards, want 3", len(st.PerShard))
	}
}

// TestShardedDurableRecovery exercises the sharded WAL round trip: seed,
// mutate, close, reopen (with a conflicting requested layout — the
// manifest must win), and verify the recovered contents.
func TestShardedDurableRecovery(t *testing.T) {
	dir := t.TempDir()
	rnd := rand.New(rand.NewSource(6))
	rects := randRects(rnd, 600, 0.05)
	seed := twolayer.BuildShardedRects(rects, twolayer.Options{GridSize: 16}, twolayer.ShardedOptions{Shards: 3})

	d, infos, err := twolayer.OpenShardedDurable(
		twolayer.Options{GridSize: 16},
		twolayer.LiveOptions{},
		twolayer.ShardedDurableOptions{Dir: dir, Seed: seed},
		twolayer.ShardedOptions{Shards: 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 3 {
		t.Fatalf("cold open returned %d RecoveryInfos, want 3", len(infos))
	}
	var muts []twolayer.Mutation
	for i := 0; i < 50; i++ {
		id := 10000 + i
		x := rnd.Float64()
		muts = append(muts, twolayer.Mutation{
			ID:  twolayer.ID(id),
			MBR: twolayer.Rect{MinX: x, MinY: 0.2, MaxX: x + 0.4, MaxY: 0.25},
		})
	}
	if _, err := d.Live().Apply(muts); err != nil {
		t.Fatal(err)
	}
	// Delete a seeded object too, so recovery replays both kinds.
	if found, _, err := d.Live().Delete(twolayer.ID(0), rects[0]); err != nil || !found {
		t.Fatalf("Delete: found=%v err=%v", found, err)
	}
	wantLen := len(rects) + len(muts) - 1
	if d.Live().Len() != wantLen {
		t.Fatalf("Len before close = %d, want %d", d.Live().Len(), wantLen)
	}
	w := twolayer.Rect{MinX: -1, MinY: -1, MaxX: 2, MaxY: 2}
	want, err := d.Snapshot().SearchIDs(twolayer.Query{Window: &w}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want = sorted(want)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen requesting 8 shards: the manifest's 3-shard layout wins.
	d2, infos, err := twolayer.OpenShardedDurable(
		twolayer.Options{},
		twolayer.LiveOptions{},
		twolayer.ShardedDurableOptions{Dir: dir},
		twolayer.ShardedOptions{Shards: 8},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got := d2.Live().Shards(); got != 3 {
		t.Fatalf("reopened with %d shards, manifest pins 3", got)
	}
	if len(infos) != 3 {
		t.Fatalf("reopen returned %d RecoveryInfos, want 3", len(infos))
	}
	replayed := false
	for _, ri := range infos {
		if ri.ReplayedRecords > 0 {
			replayed = true
		}
	}
	if !replayed {
		t.Error("no shard replayed any WAL records")
	}
	if d2.Live().Len() != wantLen {
		t.Fatalf("recovered Len = %d, want %d", d2.Live().Len(), wantLen)
	}
	got, err := d2.Snapshot().SearchIDs(twolayer.Query{Window: &w}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameIDs(t, "recovered contents", sorted(got), want)

	if st := d2.Stats(); !st.Recovery.CheckpointLoaded {
		t.Error("Stats().Recovery reports no checkpoint loaded despite the seed")
	}

	// The on-disk layout is one manifest plus one WAL dir per shard.
	if _, err := os.Stat(filepath.Join(dir, "shards.json")); err != nil {
		t.Errorf("manifest missing: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	shardDirs := 0
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "shard-") {
			shardDirs++
		}
	}
	if shardDirs != 3 {
		t.Errorf("found %d shard-* dirs, want 3", shardDirs)
	}
}

// TestShardedConstructorValidation pins the constructor error paths.
func TestShardedConstructorValidation(t *testing.T) {
	if _, err := twolayer.NewShardedLive(
		twolayer.Options{GridSize: 8},
		twolayer.LiveOptions{},
		twolayer.ShardedOptions{Shards: 2},
	); err == nil {
		t.Error("NewShardedLive without Space succeeded")
	}
	if _, _, err := twolayer.OpenShardedDurable(
		twolayer.Options{GridSize: 8},
		twolayer.LiveOptions{},
		twolayer.ShardedDurableOptions{Dir: t.TempDir()},
		twolayer.ShardedOptions{},
	); err == nil {
		t.Error("OpenShardedDurable on an empty dir without Space or Seed succeeded")
	}
	// Shard counts clamp: more shards than grid columns degrades to NX.
	rnd := rand.New(rand.NewSource(2))
	sh := twolayer.BuildShardedRects(randRects(rnd, 100, 0.1),
		twolayer.Options{GridSize: 4}, twolayer.ShardedOptions{Shards: 64})
	if sh.Shards() > 4 {
		t.Errorf("Shards = %d, want <= grid columns (4)", sh.Shards())
	}
	// Zero/negative resolve to one shard per CPU, clamped likewise.
	sh = twolayer.BuildShardedRects(randRects(rnd, 100, 0.1),
		twolayer.Options{GridSize: 64}, twolayer.ShardedOptions{})
	if want := min(runtime.NumCPU(), 64); sh.Shards() != want {
		t.Errorf("default Shards = %d, want %d", sh.Shards(), want)
	}
}
