// Benchmarks for the construction pipeline: sequential insert loop vs
// the two-pass counting parallel build (Options.BuildThreads), and the
// decomposed-table build that turns an index into its 2-layer+ variant.
//
// On a single-core host the parallel variants measure pipeline overhead,
// not speedup; run on a multi-core machine to see the scaling (the
// two-pass build targets near-linear scaling up to the memory bandwidth
// limit); the ncpu variant uses BuildThreads=0, i.e. runtime.NumCPU().
package twolayer_test

import (
	"runtime"
	"sync"
	"testing"

	"github.com/twolayer/twolayer/internal/core"
	"github.com/twolayer/twolayer/internal/datagen"
	"github.com/twolayer/twolayer/internal/spatial"
)

// Build-benchmark scale: the acceptance target of the parallel pipeline
// is a >= 1M-object dataset on the paper's finest grid.
const (
	buildBenchCard = 1_000_000
	buildBenchGrid = 1024
)

var (
	buildBenchOnce  sync.Once
	buildBenchRoads *spatial.Dataset
)

func buildBenchData() *spatial.Dataset {
	buildBenchOnce.Do(func() {
		buildBenchRoads = datagen.RealLikeDataset(datagen.Roads, buildBenchCard, benchSeed)
	})
	return buildBenchRoads
}

// buildThreadVariants are the sub-benchmark axis shared by the build
// benchmarks: the sequential path, fixed worker counts, and NumCPU.
var buildThreadVariants = []struct {
	name    string
	threads int
}{
	{"seq", 1},
	{"par2", 2},
	{"par4", 4},
	{"ncpu", 0},
}

// BenchmarkBuild: full index construction (no decomposed tables) of 1M
// ROADS-like objects, sequential vs parallel two-pass build.
func BenchmarkBuild(b *testing.B) {
	d := buildBenchData()
	b.Logf("GOMAXPROCS=%d NumCPU=%d", runtime.GOMAXPROCS(0), runtime.NumCPU())
	for _, v := range buildThreadVariants {
		b.Run("roads-1M/"+v.name, func(b *testing.B) {
			opts := core.Options{NX: buildBenchGrid, NY: buildBenchGrid,
				Space: d.MBR(), BuildThreads: v.threads}
			b.ReportAllocs()
			runtime.GC() // don't charge dataset-generation garbage to the first variant
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchSink = core.Build(d, opts).Len()
			}
		})
	}
}

// BenchmarkBuildDecomposed: the decomposed-table build alone — the base
// index is constructed outside the timer, so the measurement isolates
// the per-tile sort work that BuildDecomposed fans across workers.
func BenchmarkBuildDecomposed(b *testing.B) {
	d := buildBenchData()
	for _, v := range buildThreadVariants {
		b.Run("roads-1M/"+v.name, func(b *testing.B) {
			opts := core.Options{NX: buildBenchGrid, NY: buildBenchGrid,
				Space: d.MBR(), BuildThreads: v.threads}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				ix := core.Build(d, opts)
				runtime.GC() // don't charge the base build's garbage to the timed phase
				b.StartTimer()
				ix.BuildDecomposed()
				benchSink = ix.Len()
			}
		})
	}
}
