package twolayer_test

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	twolayer "github.com/twolayer/twolayer"
)

// Sharded-engine benchmarks: scatter-gather query latency and live
// mutation throughput across shard counts. `make bench-shard` records
// them into BENCH_3.json; docs/SHARDING.md discusses the expected
// scaling (Apply throughput grows with shards because each shard
// publishes a copy-on-write clone of only its own slab).

func shardedBenchRects(n int) []twolayer.Rect {
	rnd := rand.New(rand.NewSource(42))
	rects := make([]twolayer.Rect, n)
	for i := range rects {
		x, y := rnd.Float64(), rnd.Float64()
		rects[i] = twolayer.Rect{
			MinX: x, MinY: y,
			MaxX: x + rnd.Float64()*0.002, MaxY: y + rnd.Float64()*0.002,
		}
	}
	return rects
}

// BenchmarkShardedWindow measures mixed window queries — mostly
// slab-local (the fast path), some spanning — through the sharded
// engine at increasing shard counts.
func BenchmarkShardedWindow(b *testing.B) {
	rects := shardedBenchRects(200_000)
	rnd := rand.New(rand.NewSource(7))
	windows := make([]twolayer.Rect, 512)
	for i := range windows {
		x, y := rnd.Float64()*0.97, rnd.Float64()*0.97
		side := 0.005 + rnd.Float64()*0.045 // up to ~4.5% extent
		windows[i] = twolayer.Rect{MinX: x, MinY: y, MaxX: x + side, MaxY: y + side}
	}
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			sh := twolayer.BuildShardedRects(rects, twolayer.Options{GridSize: 512},
				twolayer.ShardedOptions{Shards: shards})
			b.ResetTimer()
			sink := 0
			for i := 0; i < b.N; i++ {
				q := twolayer.Query{Window: &windows[i%len(windows)]}
				n, err := sh.SearchCount(q)
				if err != nil {
					b.Fatal(err)
				}
				sink += n
			}
			benchSink = sink
		})
	}
}

// BenchmarkShardedApply measures live mutation throughput: concurrent
// writers stream small insert/delete batches through ShardedLive. Small
// apply batches make the per-publish copy-on-write clone the dominant
// cost; sharding divides each clone by the shard count and runs the
// loops in parallel, so throughput scales with shards.
func BenchmarkShardedApply(b *testing.B) {
	base := shardedBenchRects(200_000)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			sh := twolayer.BuildShardedRects(base, twolayer.Options{GridSize: 768},
				twolayer.ShardedOptions{Shards: shards})
			live := twolayer.ShardedLiveFrom(sh, twolayer.LiveOptions{MaxBatch: 16})
			defer live.Close()

			var seq atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rnd := rand.New(rand.NewSource(seq.Add(1)))
				batch := make([]twolayer.Mutation, 8)
				for pb.Next() {
					for j := range batch {
						id := twolayer.ID(1_000_000 + seq.Add(1))
						x, y := rnd.Float64(), rnd.Float64()
						batch[j] = twolayer.Mutation{
							ID:  id,
							MBR: twolayer.Rect{MinX: x, MinY: y, MaxX: x + 0.002, MaxY: y + 0.002},
						}
					}
					if _, err := live.Apply(batch); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(b.N*8)/b.Elapsed().Seconds(), "muts/s")
		})
	}
}
