package twolayer_test

import (
	"testing"

	"github.com/twolayer/twolayer/internal/core"
)

// BenchmarkWindowTracing prices the observability layer on the window
// query hot path over the ROADS-like benchmark workload:
//
//   - off:   a plain read view — the production path when neither stats
//     nor tracing is requested. Its only observability cost is the nil
//     checks the Stats instrumentation has always performed, so it must
//     stay within noise (<2%, the acceptance bar) of the pre-tracing
//     baseline measured by BenchmarkTable5Window/2-layer/ROADS.
//   - stats: an instrumented view counting the paper's work metrics.
//   - trace: a traced view, additionally splitting wall time between
//     the filtering and refinement stages.
//
// Compare with: go test -bench 'WindowTracing' -count 10 | benchstat.
func BenchmarkWindowTracing(b *testing.B) {
	benchData()
	ix := core.Build(benchRoads, core.Options{NX: benchGrid, NY: benchGrid})

	b.Run("off", func(b *testing.B) {
		view := ix.View(nil)
		runWindows(b, view.WindowCount)
	})
	b.Run("stats", func(b *testing.B) {
		var s core.Stats
		view := ix.View(&s)
		runWindows(b, view.WindowCount)
	})
	b.Run("trace", func(b *testing.B) {
		var tr core.Trace
		view := ix.ViewTraced(&tr)
		runWindows(b, view.WindowCount)
	})
}
